#include "core/scenario_batch.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "analysis/diagnostics.hpp"
#include "core/topk.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace insta::core {

using netlist::PinId;
using timing::ArcId;
using timing::EndpointId;
using util::check;

namespace {

/// Registered-once scenario counters (no-op stubs when telemetry is off).
struct ScenarioMetrics {
  telemetry::Counter batches;
  telemetry::Counter scenarios;
  telemetry::Counter frontier_pins;
  telemetry::Counter early_terminations;
  telemetry::Counter endpoints;
  telemetry::Counter overlay_bytes;
};

ScenarioMetrics& scenario_metrics() {
  static ScenarioMetrics m = [] {
    auto& r = telemetry::MetricsRegistry::global();
    ScenarioMetrics sm;
    sm.batches = r.counter("scenario.batches");
    sm.scenarios = r.counter("scenario.scenarios");
    sm.frontier_pins = r.counter("scenario.frontier_pins");
    sm.early_terminations = r.counter("scenario.early_terminations");
    sm.endpoints = r.counter("scenario.endpoints_evaluated");
    sm.overlay_bytes = r.counter("scenario.overlay_bytes");
    return sm;
  }();
  return m;
}

}  // namespace

/// Per-worker copy-on-write evaluation state. Sized once against the parent
/// engine; all per-scenario state is reset through compact touched-lists, so
/// a workspace reused across scenarios (and evaluate() calls) costs
/// O(scenario frontier) per run, not O(design).
///
/// The overlay model mirrors the engine's flat stores one-to-one:
///   pin_ov[pin]   -> private Top-K slot (both transitions, both modes)
///   slot_ov[slot] -> private arc mu/sigma override
///   sp_ov[sp]     -> private startpoint arrival override
/// with -1 meaning "read the shared baseline". OverlayValues below resolves
/// each read through these maps, so the engine's merge/eval kernels see
/// exactly the values a sequentially annotated engine would hold.
struct ScenarioBatch::Workspace {
  std::int32_t k = 0;
  bool hold = false;
  std::size_t modes = 1;  ///< 1 late-only, 2 with early/hold stores

  // Pin Top-K overlays. Entry storage is [(ov * 2 + rf) * k]; counts are
  // [ov * 2 + rf]. ov2_* mirror the engine's negated early-corner stores.
  std::vector<std::int32_t> pin_ov;  // per pin, -1 = baseline
  std::vector<PinId> touched_pins;
  std::int32_t num_pin_ov = 0;
  std::vector<float> ov_arr, ov_mu, ov_sig;
  std::vector<std::int32_t> ov_sp, ov_cnt;
  std::vector<float> ov2_arr, ov2_mu, ov2_sig;
  std::vector<std::int32_t> ov2_sp, ov2_cnt;

  // Arc-delay overrides, [idx * 2 + rf].
  std::vector<std::int32_t> slot_ov;  // per fanin slot, -1 = baseline
  std::vector<std::int32_t> touched_slots;
  std::int32_t num_slot_ov = 0;
  std::vector<float> ov_amu, ov_asig;

  // Startpoint arrival overrides, [idx * 2 + rf].
  std::vector<std::int32_t> sp_ov;  // per startpoint, -1 = baseline
  std::vector<std::int32_t> touched_sps;
  std::int32_t num_sp_ov = 0;
  std::vector<float> ov_spmu, ov_spsig;

  // Frontier state: the workspace twin of the engine's sparse-pass fields.
  std::vector<std::uint8_t> dirty;             // per pin
  std::vector<std::vector<PinId>> frontier;    // per level
  std::size_t dirty_level = std::numeric_limits<std::size_t>::max();
  std::vector<EndpointId> dirty_eps;
  std::vector<std::uint8_t> changed;           // per frontier slot

  // Phase-1 merge slab: frontier slot i writes entries at
  // ((i * modes + m) * 2 + rf) * k and its count at (i * modes + m) * 2 + rf,
  // so parallel chunks touch disjoint ranges.
  std::vector<float> m_arr, m_mu, m_sig;
  std::vector<std::int32_t> m_sp, m_cnt;

  // Phase-3 results, parallel to dirty_eps; ep_ov lets the lazy WNS rescan
  // substitute scenario slacks for baseline ones.
  std::vector<float> new_setup, new_hold;
  std::vector<std::int32_t> ep_ov;  // per endpoint, -1 = baseline slack

  // Cross-corner merged endpoint slacks (multi-corner engines only):
  // running per-endpoint minimum folded corner by corner, scanned once at
  // the end in the same endpoint-major order as Engine::merged_summary.
  std::vector<float> merged_setup, merged_hold;

  void init(const Engine& e) {
    k = e.options_.top_k;
    hold = e.options_.enable_hold;
    modes = hold ? 2 : 1;
    pin_ov.assign(e.num_pins_, -1);
    dirty.assign(e.num_pins_, 0);
    frontier.resize(e.level_start_.size() - 1);
    // Overlay maps are corner-relative (one scenario corner in flight at a
    // time), so they size to the single-corner plane, not the C× stores.
    slot_ov.assign(e.num_slots_, -1);
    sp_ov.assign(e.num_sps_, -1);
    ep_ov.assign(e.ep_pin_.size(), -1);
  }

  void ensure_pin_overlay(std::int32_t ov) {
    const auto need = static_cast<std::size_t>(ov + 1) * 2;
    if (ov_cnt.size() >= need) return;
    const std::size_t entries = need * static_cast<std::size_t>(k);
    ov_arr.resize(entries);
    ov_mu.resize(entries);
    ov_sig.resize(entries);
    ov_sp.resize(entries);
    ov_cnt.resize(need);
    if (hold) {
      ov2_arr.resize(entries);
      ov2_mu.resize(entries);
      ov2_sig.resize(entries);
      ov2_sp.resize(entries);
      ov2_cnt.resize(need);
    }
  }

  /// Clears all per-scenario state through the touched-lists. Idempotent;
  /// the frontier sweep is defensive (the level walk already clears levels
  /// it processed).
  void reset() {
    for (const PinId pin : touched_pins) {
      pin_ov[static_cast<std::size_t>(pin)] = -1;
    }
    touched_pins.clear();
    num_pin_ov = 0;
    for (const std::int32_t slot : touched_slots) {
      slot_ov[static_cast<std::size_t>(slot)] = -1;
    }
    touched_slots.clear();
    num_slot_ov = 0;
    for (const std::int32_t sp : touched_sps) {
      sp_ov[static_cast<std::size_t>(sp)] = -1;
    }
    touched_sps.clear();
    num_sp_ov = 0;
    for (const EndpointId ep : dirty_eps) {
      ep_ov[static_cast<std::size_t>(ep)] = -1;
    }
    dirty_eps.clear();
    for (std::vector<PinId>& fr : frontier) {
      for (const PinId pin : fr) dirty[static_cast<std::size_t>(pin)] = 0;
      fr.clear();
    }
    dirty_level = std::numeric_limits<std::size_t>::max();
  }

  /// Workspace twin of Engine::mark_dirty.
  void mark(PinId pin, int lvl) {
    if (lvl < 0) return;
    const auto p = static_cast<std::size_t>(pin);
    if (dirty[p] != 0) return;
    dirty[p] = 1;
    frontier[static_cast<std::size_t>(lvl)].push_back(pin);
    dirty_level = std::min(dirty_level, static_cast<std::size_t>(lvl));
  }

  [[nodiscard]] std::size_t overlay_bytes() const {
    const std::size_t entry = 3 * sizeof(float) + sizeof(std::int32_t);
    const std::size_t topk = static_cast<std::size_t>(num_pin_ov) * 2 *
                                 static_cast<std::size_t>(k) * entry * modes +
                             static_cast<std::size_t>(num_pin_ov) * 2 *
                                 sizeof(std::int32_t) * modes;
    const std::size_t arcs = touched_slots.size() * 4 * sizeof(float);
    const std::size_t sps = touched_sps.size() * 4 * sizeof(float);
    return topk + arcs + sps;
  }
};

/// Overlay-first Values adapter of the engine's shared kernels: every read
/// checks the workspace's copy-on-write maps before falling back to the
/// parent's baseline arrays. The adapter is bound to one corner; its
/// fallback expressions match Engine::LiveValues (corner offsets included)
/// exactly, so a scenario and a sequential pass execute the same
/// instruction stream over the same bytes.
struct ScenarioBatch::OverlayValues {
  const Engine& e;
  const Workspace& w;
  std::size_t tkoff;    ///< corner offset into the Top-K entry planes
  std::size_t cntoff;   ///< corner offset into the count planes
  std::size_t slotoff;  ///< corner offset into amu_/asig_
  std::size_t spoff;    ///< corner offset into sp_mu_/sp_sig_

  OverlayValues(const Engine& eng, const Workspace& ws, CornerId corner)
      : e(eng),
        w(ws),
        tkoff(eng.tk_off(corner)),
        cntoff(eng.cnt_off(corner)),
        slotoff(eng.slot_off(corner)),
        spoff(eng.sp_off(corner)) {}

  [[nodiscard]] TopKConstView parent(std::size_t pin, int rf,
                                     bool early) const {
    const std::int32_t ov = w.pin_ov[pin];
    if (ov >= 0) {
      const auto c = static_cast<std::size_t>(ov) * 2 +
                     static_cast<std::size_t>(rf);
      const std::size_t base = c * static_cast<std::size_t>(w.k);
      if (early) {
        return {&w.ov2_arr[base], &w.ov2_mu[base], &w.ov2_sig[base],
                &w.ov2_sp[base], w.ov2_cnt[c]};
      }
      return {&w.ov_arr[base], &w.ov_mu[base], &w.ov_sig[base],
              &w.ov_sp[base], w.ov_cnt[c]};
    }
    const auto& arr = early ? e.tk2_arr_ : e.tk_arr_;
    const auto& mu = early ? e.tk2_mu_ : e.tk_mu_;
    const auto& sig = early ? e.tk2_sig_ : e.tk_sig_;
    const auto& sp = early ? e.tk2_sp_ : e.tk_sp_;
    const auto& cnt = early ? e.tk2_cnt_ : e.tk_cnt_;
    const std::size_t ci = e.cnt_index(static_cast<PinId>(pin), rf);
    const std::size_t base = tkoff + ci * e.tk_stride_;
    return {&arr[base], &mu[base], &sig[base], &sp[base], cnt[cntoff + ci]};
  }
  [[nodiscard]] float arc_mu(std::size_t slot, int rf) const {
    const std::int32_t idx = w.slot_ov[slot];
    if (idx >= 0) {
      return w.ov_amu[static_cast<std::size_t>(idx) * 2 +
                      static_cast<std::size_t>(rf)];
    }
    return e.amu_[static_cast<std::size_t>(rf)][slotoff + slot];
  }
  [[nodiscard]] float arc_sig(std::size_t slot, int rf) const {
    const std::int32_t idx = w.slot_ov[slot];
    if (idx >= 0) {
      return w.ov_asig[static_cast<std::size_t>(idx) * 2 +
                       static_cast<std::size_t>(rf)];
    }
    return e.asig_[static_cast<std::size_t>(rf)][slotoff + slot];
  }
  [[nodiscard]] float sp_mu(std::int32_t sp, int rf) const {
    const std::int32_t idx = w.sp_ov[static_cast<std::size_t>(sp)];
    if (idx >= 0) {
      return w.ov_spmu[static_cast<std::size_t>(idx) * 2 +
                       static_cast<std::size_t>(rf)];
    }
    return e.sp_mu_[static_cast<std::size_t>(rf)]
                   [spoff + static_cast<std::size_t>(sp)];
  }
  [[nodiscard]] float sp_sig(std::int32_t sp, int rf) const {
    const std::int32_t idx = w.sp_ov[static_cast<std::size_t>(sp)];
    if (idx >= 0) {
      return w.ov_spsig[static_cast<std::size_t>(idx) * 2 +
                        static_cast<std::size_t>(rf)];
    }
    return e.sp_sig_[static_cast<std::size_t>(rf)]
                    [spoff + static_cast<std::size_t>(sp)];
  }
};

ScenarioBatch::ScenarioBatch(const Engine& engine, ScenarioBatchOptions options)
    : engine_(&engine), options_(options) {}

ScenarioBatch::~ScenarioBatch() = default;

ScenarioBatch::Workspace& ScenarioBatch::acquire_workspace() {
  const util::LockGuard lock(pool_mutex_);
  if (!free_list_.empty()) {
    Workspace* ws = free_list_.back();
    free_list_.pop_back();
    return *ws;
  }
  workspaces_.push_back(std::make_unique<Workspace>());
  workspaces_.back()->init(*engine_);
  return *workspaces_.back();
}

void ScenarioBatch::release_workspace(Workspace& ws) {
  const util::LockGuard lock(pool_mutex_);
  free_list_.push_back(&ws);
}

/// One scenario end-to-end across every corner: the delta-set is broadcast
/// (the corner × delta-set cross product), one corner at a time through the
/// same workspace. Per-corner summaries fill setup_by_corner/hold_by_corner;
/// multi-corner engines additionally fold a running per-endpoint minimum
/// that a final endpoint-major scan turns into the merged summary — the same
/// semantics (and float comparisons) as Engine::merged_summary.
void ScenarioBatch::run_scenario(std::span<const timing::ArcDelta> deltas,
                                 Workspace& ws, bool level_parallel,
                                 std::uint64_t flow_id,
                                 ScenarioResult& out) const {
  INSTA_TRACE_SCOPE("scenario.run",
                    static_cast<std::int64_t>(deltas.size()));
  if (flow_id != 0) telemetry::Tracer::global().flow(flow_id, 't');
  const Engine& e = *engine_;
  const auto num_corners = static_cast<CornerId>(e.C_);
  const bool hold = ws.hold;
  const bool multi = num_corners > 1;
  const std::size_t num_eps = e.ep_pin_.size();
  constexpr float kInf = std::numeric_limits<float>::infinity();
  out.setup_by_corner.assign(static_cast<std::size_t>(num_corners), {});
  if (hold) {
    out.hold_by_corner.assign(static_cast<std::size_t>(num_corners), {});
  }
  if (multi) {
    ws.merged_setup.assign(num_eps, kInf);
    if (hold) ws.merged_hold.assign(num_eps, kInf);
  }
  for (CornerId corner = 0; corner < num_corners; ++corner) {
    run_scenario_corner(deltas, ws, level_parallel, corner, out);
    ws.reset();
  }
  if (!multi) {
    out.setup = out.setup_by_corner[0];
    if (hold) out.hold = out.hold_by_corner[0];
    return;
  }
  // Endpoint-major merged scan, same order and comparisons as
  // Engine::merged_summary (merged_setup already holds each endpoint's
  // worst-over-corners value; unconstrained-everywhere endpoints stayed
  // +inf and are skipped).
  const auto merge_scan = [num_eps](const std::vector<float>& m) {
    double tns = 0.0;
    float worst = 0.0f;
    bool any = false;
    int violations = 0;
    for (std::size_t ep = 0; ep < num_eps; ++ep) {
      const float s = m[ep];
      if (!std::isfinite(s)) continue;
      if (s < 0.0f) {
        tns += static_cast<double>(s);
        ++violations;
      }
      if (!any || s < worst) {
        worst = s;
        any = true;
      }
    }
    return SlackSummary{tns, any ? static_cast<double>(worst) : 0.0,
                        violations};
  };
  out.setup = merge_scan(ws.merged_setup);
  if (hold) out.hold = merge_scan(ws.merged_hold);
}

/// One (scenario, corner) cell: overlay-annotate, frontier-sparse level
/// walk, delta endpoint evaluation, aggregate replay — all against one
/// corner's baseline planes. Every phase mirrors the corresponding stretch
/// of Engine::annotate / Engine::run_forward_sparse_corner in both
/// operation order and float expressions — that (plus the shared kernels)
/// is the bit-identity argument, so any edit here must keep the pairing
/// intact.
void ScenarioBatch::run_scenario_corner(
    std::span<const timing::ArcDelta> deltas, Workspace& ws,
    bool level_parallel, CornerId corner, ScenarioResult& out) const {
  const Engine& e = *engine_;
  const auto cc = static_cast<std::size_t>(corner);
  const float dscale = e.corners_[cc].delay_scale;
  const float sscale = e.corners_[cc].sigma_scale;
  const bool hold = ws.hold;
  const std::size_t modes = ws.modes;
  const auto k = static_cast<std::int32_t>(ws.k);
  const auto ksz = static_cast<std::size_t>(ws.k);
  auto& pool = util::ThreadPool::global();
  const bool parallel = level_parallel && e.options_.parallel;
  const auto threshold =
      static_cast<std::size_t>(e.options_.parallel_threshold);
  const auto grain = static_cast<std::size_t>(e.options_.parallel_grain);

  // ---- overlay annotate: Engine::annotate against the override maps ------
  for (const timing::ArcDelta& d : deltas) {
    const auto arc = static_cast<std::size_t>(d.arc);
    const std::int32_t slot = e.slot_of_arc_[arc];
    {
      const PinId to = e.graph_->arc(d.arc).to;
      ws.mark(to, e.graph_->level_of(to));
    }
    if (slot >= 0) {
      std::int32_t idx = ws.slot_ov[static_cast<std::size_t>(slot)];
      if (idx < 0) {
        idx = ws.num_slot_ov++;
        const auto need = static_cast<std::size_t>(idx + 1) * 2;
        if (ws.ov_amu.size() < need) {
          ws.ov_amu.resize(need);
          ws.ov_asig.resize(need);
        }
        ws.slot_ov[static_cast<std::size_t>(slot)] = idx;
        ws.touched_slots.push_back(slot);
      }
      for (const int rf : {0, 1}) {
        const auto at = static_cast<std::size_t>(idx) * 2 +
                        static_cast<std::size_t>(rf);
        // Same corner-scale fold as Engine::annotate, term for term.
        ws.ov_amu[at] =
            Engine::scaled(d.mu[static_cast<std::size_t>(rf)], dscale);
        ws.ov_asig[at] =
            Engine::scaled(d.sigma[static_cast<std::size_t>(rf)], sscale);
      }
      continue;
    }
    const std::int32_t sp = e.launch_sp_of_arc_[arc];
    check(sp >= 0,
          "ScenarioBatch: arc is neither a data arc nor a launch arc "
          "(clock-network arcs require re-initialization)");
    std::int32_t idx = ws.sp_ov[static_cast<std::size_t>(sp)];
    if (idx < 0) {
      idx = ws.num_sp_ov++;
      const auto need = static_cast<std::size_t>(idx + 1) * 2;
      if (ws.ov_spmu.size() < need) {
        ws.ov_spmu.resize(need);
        ws.ov_spsig.resize(need);
      }
      ws.sp_ov[static_cast<std::size_t>(sp)] = idx;
      ws.touched_sps.push_back(sp);
    }
    for (const int rf : {0, 1}) {
      const auto rfi = static_cast<std::size_t>(rf);
      const auto spi = static_cast<std::size_t>(sp);
      const auto at = static_cast<std::size_t>(idx) * 2 + rfi;
      const float dsig = Engine::scaled(d.sigma[rfi], sscale);
      // Same fold as Engine::annotate, term for term.
      ws.ov_spmu[at] = e.sp_ck_mu_[spi] + Engine::scaled(d.mu[rfi], dscale);
      ws.ov_spsig[at] = std::sqrt(e.sp_ck_sig2_[spi] + dsig * dsig);
    }
  }

  // ---- frontier-sparse level walk: Engine::run_forward_sparse_corner -----
  const OverlayValues vals(e, ws, corner);
  const std::size_t num_levels = e.level_start_.size() - 1;
  for (std::size_t l = std::min(ws.dirty_level, num_levels); l < num_levels;
       ++l) {
    std::vector<PinId>& fr = ws.frontier[l];
    if (fr.empty()) continue;

    // Phase 1 (parallel under level-parallelism): re-merge every dirty pin
    // into this level's slab slice and flag value changes against the
    // visible (overlay-first) store. Chunks write disjoint slab/flag
    // ranges; overlay maps are read-only here.
    ws.changed.assign(fr.size(), 0);
    const std::size_t need_cnt = fr.size() * modes * 2;
    if (ws.m_cnt.size() < need_cnt) {
      ws.m_cnt.resize(need_cnt);
      ws.m_arr.resize(need_cnt * ksz);
      ws.m_mu.resize(need_cnt * ksz);
      ws.m_sig.resize(need_cnt * ksz);
      ws.m_sp.resize(need_cnt * ksz);
    }
    auto run = [&](std::size_t a, std::size_t b) {
      Engine::ForwardCounters fc;
      for (std::size_t i = a; i < b; ++i) {
        const PinId pin = fr[i];
        bool pin_changed = false;
        for (std::size_t m = 0; m < modes; ++m) {
          for (int rf = 0; rf < 2; ++rf) {
            const std::size_t c =
                (i * modes + m) * 2 + static_cast<std::size_t>(rf);
            const TopKView dst{&ws.m_arr[c * ksz], &ws.m_mu[c * ksz],
                               &ws.m_sig[c * ksz], &ws.m_sp[c * ksz], k,
                               &ws.m_cnt[c]};
            if (m == 0) {
              e.merge_pin_values<false>(vals, pin, rf, dst, fc);
            } else {
              e.merge_pin_values<true>(vals, pin, rf, dst, fc);
            }
            if (!topk_equal_const(
                    dst, vals.parent(static_cast<std::size_t>(pin), rf,
                                     /*early=*/m != 0))) {
              pin_changed = true;
            }
          }
        }
        ws.changed[i] = pin_changed ? 1 : 0;
      }
    };
    if (parallel && fr.size() >= threshold) {
      pool.parallel_for_chunks(std::size_t{0}, fr.size(), run, grain);
    } else {
      run(0, fr.size());
    }

    // Phase 2 (serial scatter): a changed pin materializes its private
    // Top-K slot (all transitions and modes — unchanged lists copy bytes
    // equal to baseline, so visibility is unaffected), queues its endpoint,
    // and dirties its fanout; an unchanged pin ends the ripple.
    std::uint64_t early_terms = 0;
    for (std::size_t i = 0; i < fr.size(); ++i) {
      const auto p = static_cast<std::size_t>(fr[i]);
      ws.dirty[p] = 0;
      if (ws.changed[i] == 0) {
        ++early_terms;
        continue;
      }
      const std::int32_t ov = ws.num_pin_ov++;
      ws.ensure_pin_overlay(ov);
      for (std::size_t m = 0; m < modes; ++m) {
        for (int rf = 0; rf < 2; ++rf) {
          const std::size_t c =
              (i * modes + m) * 2 + static_cast<std::size_t>(rf);
          const std::int32_t cnt = ws.m_cnt[c];
          const auto oc = static_cast<std::size_t>(ov) * 2 +
                          static_cast<std::size_t>(rf);
          const std::size_t src = c * ksz;
          const std::size_t dst = oc * ksz;
          const auto fb = static_cast<std::size_t>(cnt) * sizeof(float);
          const auto ib = static_cast<std::size_t>(cnt) * sizeof(std::int32_t);
          if (m == 0) {
            std::memcpy(&ws.ov_arr[dst], &ws.m_arr[src], fb);
            std::memcpy(&ws.ov_mu[dst], &ws.m_mu[src], fb);
            std::memcpy(&ws.ov_sig[dst], &ws.m_sig[src], fb);
            std::memcpy(&ws.ov_sp[dst], &ws.m_sp[src], ib);
            ws.ov_cnt[oc] = cnt;
          } else {
            std::memcpy(&ws.ov2_arr[dst], &ws.m_arr[src], fb);
            std::memcpy(&ws.ov2_mu[dst], &ws.m_mu[src], fb);
            std::memcpy(&ws.ov2_sig[dst], &ws.m_sig[src], fb);
            std::memcpy(&ws.ov2_sp[dst], &ws.m_sp[src], ib);
            ws.ov2_cnt[oc] = cnt;
          }
        }
      }
      ws.pin_ov[p] = ov;
      ws.touched_pins.push_back(fr[i]);
      if (e.ep_of_pin_[p] >= 0) {
        ws.dirty_eps.push_back(static_cast<EndpointId>(e.ep_of_pin_[p]));
      }
      const std::int32_t os = e.fo_start_[p];
      const std::int32_t oe = e.fo_start_[p + 1];
      for (std::int32_t o = os; o < oe; ++o) {
        const PinId child = e.fo_to_[static_cast<std::size_t>(o)];
        if (ws.dirty[static_cast<std::size_t>(child)] != 0) continue;
        ws.mark(child, e.graph_->level_of(child));
      }
    }
    out.frontier_pins += fr.size();
    out.early_terminations += early_terms;
    fr.clear();
  }
  ws.dirty_level = std::numeric_limits<std::size_t>::max();

  // ---- delta endpoint evaluation (phase 3) -------------------------------
  const std::size_t nd = ws.dirty_eps.size();
  ws.new_setup.resize(nd);
  if (hold) ws.new_hold.resize(nd);
  auto eval = [&](std::size_t a, std::size_t b) {
    for (std::size_t i = a; i < b; ++i) {
      ws.new_setup[i] =
          e.evaluate_endpoint_values(vals, ws.dirty_eps[i]).slack;
      if (hold) {
        ws.new_hold[i] =
            e.evaluate_endpoint_hold_values(vals, ws.dirty_eps[i]).slack;
      }
    }
  };
  if (parallel && nd >= threshold) {
    pool.parallel_for_chunks(std::size_t{0}, nd, eval,
                             static_cast<std::size_t>(e.options_.endpoint_grain));
  } else {
    eval(0, nd);
  }
  out.endpoints_evaluated += nd;

  // ---- aggregate replay: apply_setup_delta/apply_hold_delta on locals ----
  // Starts from this corner's settled parent caches (evaluate() reads
  // tns(c)/wns(c) up front) and folds deltas in dirty_eps order — the same
  // order a sequential pass folds them.
  const std::size_t eoff = e.ep_off(corner);
  double tns = e.tns_cache_[cc];
  int nviol = e.nviol_cache_[cc];
  float wns_c = e.wns_cache_[cc];
  bool wns_any = e.wns_any_[cc] != 0;
  bool wns_valid = e.wns_valid_[cc] != 0;
  double ths = hold ? e.ths_cache_[cc] : 0.0;
  int nhviol = hold ? e.nhold_viol_cache_[cc] : 0;
  float whs_c = hold ? e.whs_cache_[cc] : 0.0f;
  bool whs_any = hold && e.whs_any_[cc] != 0;
  bool whs_valid = hold && e.whs_valid_[cc] != 0;
  for (std::size_t i = 0; i < nd; ++i) {
    const auto epi = static_cast<std::size_t>(ws.dirty_eps[i]);
    // Recorded before the equality skip so the lazy rescan substitutes the
    // scenario value even when it equals the baseline (last write wins for
    // endpoints reached twice — they are not: fanout climbs levels, so each
    // endpoint appears at most once in dirty_eps).
    ws.ep_ov[epi] = static_cast<std::int32_t>(i);
    const float oldv = e.slack_[eoff + epi];
    const float newv = ws.new_setup[i];
    if (oldv != newv) {
      if (std::isfinite(oldv) && oldv < 0.0f) {
        tns -= static_cast<double>(oldv);
        --nviol;
      }
      if (std::isfinite(newv) && newv < 0.0f) {
        tns += static_cast<double>(newv);
        ++nviol;
      }
      if (wns_valid) {
        if (std::isfinite(newv) && (!wns_any || newv <= wns_c)) {
          wns_c = newv;
          wns_any = true;
        } else if (wns_any && std::isfinite(oldv) && oldv <= wns_c) {
          wns_valid = false;
        }
      }
    }
    if (hold) {
      const float holdo = e.hold_slack_[eoff + epi];
      const float holdn = ws.new_hold[i];
      if (holdo != holdn) {
        if (std::isfinite(holdo) && holdo < 0.0f) {
          ths -= static_cast<double>(holdo);
          --nhviol;
        }
        if (std::isfinite(holdn) && holdn < 0.0f) {
          ths += static_cast<double>(holdn);
          ++nhviol;
        }
        if (whs_valid) {
          if (std::isfinite(holdn) && (!whs_any || holdn <= whs_c)) {
            whs_c = holdn;
            whs_any = true;
          } else if (whs_any && std::isfinite(holdo) && holdo <= whs_c) {
            whs_valid = false;
          }
        }
      }
    }
  }
  // Lazy rescan, overlay-substituted: the workspace twin of the rebuild
  // Engine::wns() performs when the cached minimum may have improved. Same
  // scan order and comparisons as worst_of().
  const std::size_t num_eps = e.ep_pin_.size();
  if (!wns_valid) {
    float w = 0.0f;
    bool any = false;
    for (std::size_t ep = 0; ep < num_eps; ++ep) {
      const std::int32_t oi = ws.ep_ov[ep];
      const float s = oi >= 0 ? ws.new_setup[static_cast<std::size_t>(oi)]
                              : e.slack_[eoff + ep];
      if (!std::isfinite(s)) continue;
      if (!any || s < w) {
        w = s;
        any = true;
      }
    }
    wns_c = w;
    wns_any = any;
  }
  if (hold && !whs_valid) {
    float w = 0.0f;
    bool any = false;
    for (std::size_t ep = 0; ep < num_eps; ++ep) {
      const std::int32_t oi = ws.ep_ov[ep];
      const float s = oi >= 0 ? ws.new_hold[static_cast<std::size_t>(oi)]
                              : e.hold_slack_[eoff + ep];
      if (!std::isfinite(s)) continue;
      if (!any || s < w) {
        w = s;
        any = true;
      }
    }
    whs_c = w;
    whs_any = any;
  }

  out.setup_by_corner[cc] =
      SlackSummary{tns, wns_any ? static_cast<double>(wns_c) : 0.0, nviol};
  if (hold) {
    out.hold_by_corner[cc] =
        SlackSummary{ths, whs_any ? static_cast<double>(whs_c) : 0.0, nhviol};
  }
  // Fold this corner's substituted endpoint slacks into the running
  // cross-corner minimum (the caller's final scan mirrors
  // Engine::merged_summary); baseline reads stay on this corner's plane.
  if (e.C_ > 1) {
    for (std::size_t ep = 0; ep < num_eps; ++ep) {
      const std::int32_t oi = ws.ep_ov[ep];
      const float s = oi >= 0 ? ws.new_setup[static_cast<std::size_t>(oi)]
                              : e.slack_[eoff + ep];
      if (s < ws.merged_setup[ep]) ws.merged_setup[ep] = s;
      if (hold) {
        const float h = oi >= 0 ? ws.new_hold[static_cast<std::size_t>(oi)]
                                : e.hold_slack_[eoff + ep];
        if (h < ws.merged_hold[ep]) ws.merged_hold[ep] = h;
      }
    }
  }
  if (corner == 0 && options_.collect_endpoints) {
    out.endpoint_changes.reserve(nd);
    for (std::size_t i = 0; i < nd; ++i) {
      EndpointSlackChange ch;
      ch.ep = ws.dirty_eps[i];
      ch.setup = ws.new_setup[i];
      if (hold) ch.hold = ws.new_hold[i];
      out.endpoint_changes.push_back(ch);
    }
  }
  out.overlay_bytes += ws.overlay_bytes();
}

std::vector<ScenarioResult> ScenarioBatch::evaluate(
    std::span<const std::span<const timing::ArcDelta>> scenarios,
    std::span<const std::uint64_t> flow_ids) {
  INSTA_TRACE_SCOPE("scenario.batch",
                    static_cast<std::int64_t>(scenarios.size()));
  const Engine& e = *engine_;
  check(e.timing_clean(),
        "ScenarioBatch::evaluate: parent engine has pending annotations "
        "(run run_forward_incremental() first)");
  check(flow_ids.empty() || flow_ids.size() == scenarios.size(),
        "ScenarioBatch::evaluate: flow_ids must be empty or match the "
        "scenario count");
  const auto flow_of = [&flow_ids](std::size_t s) -> std::uint64_t {
    return flow_ids.empty() ? 0 : flow_ids[s];
  };
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const analysis::LintReport rep = e.check_deltas(scenarios[s]);
    if (rep.has_errors()) {
      check(false, "ScenarioBatch::evaluate: scenario " + std::to_string(s) +
                       " has invalid deltas:\n" + rep.str());
    }
  }
  // Settle every corner's lazy WNS/WHS caches so every (scenario, corner)
  // cell replays its deltas from the same aggregate state a sequential
  // pass would start from.
  for (CornerId c = 0; c < static_cast<CornerId>(e.C_); ++c) {
    (void)e.tns(c);
    (void)e.wns(c);
    if (e.options_.enable_hold) {
      (void)e.ths(c);
      (void)e.whs(c);
    }
  }

  const std::size_t num_scenarios = scenarios.size();
  std::vector<ScenarioResult> results(num_scenarios);
  if (num_scenarios == 0) return results;

  bool scenario_parallel = false;
  switch (options_.strategy) {
    case ScenarioStrategy::kScenarioParallel:
      scenario_parallel = true;
      break;
    case ScenarioStrategy::kLevelParallel:
      scenario_parallel = false;
      break;
    case ScenarioStrategy::kAuto:
      scenario_parallel = num_scenarios >= 4;
      break;
  }

  if (scenario_parallel) {
    // One workspace per chunk: a worker checks one out, streams its
    // scenarios through it serially (level-parallelism off — the pool is
    // already saturated with scenarios), and returns it.
    auto& pool = util::ThreadPool::global();
    pool.parallel_for_chunks(
        std::size_t{0}, num_scenarios,
        [&](std::size_t lo, std::size_t hi) {
          Workspace& ws = acquire_workspace();
          for (std::size_t s = lo; s < hi; ++s) {
            run_scenario(scenarios[s], ws, /*level_parallel=*/false,
                         flow_of(s), results[s]);
          }
          release_workspace(ws);
        },
        /*grain=*/1);
  } else {
    Workspace& ws = acquire_workspace();
    for (std::size_t s = 0; s < num_scenarios; ++s) {
      run_scenario(scenarios[s], ws, /*level_parallel=*/true, flow_of(s),
                   results[s]);
    }
    release_workspace(ws);
  }

  ScenarioMetrics& sm = scenario_metrics();
  sm.batches.inc();
  sm.scenarios.add(num_scenarios);
  for (const ScenarioResult& r : results) {
    sm.frontier_pins.add(r.frontier_pins);
    sm.early_terminations.add(r.early_terminations);
    sm.endpoints.add(r.endpoints_evaluated);
    sm.overlay_bytes.add(r.overlay_bytes);
  }
  return results;
}

std::vector<ScenarioResult> ScenarioBatch::evaluate(
    const std::vector<std::vector<timing::ArcDelta>>& scenarios) {
  std::vector<std::span<const timing::ArcDelta>> spans;
  spans.reserve(scenarios.size());
  for (const std::vector<timing::ArcDelta>& s : scenarios) {
    spans.emplace_back(s.data(), s.size());
  }
  return evaluate(std::span<const std::span<const timing::ArcDelta>>(
      spans.data(), spans.size()));
}

}  // namespace insta::core
