#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <tuple>
#include <utility>

#include "analysis/diagnostics.hpp"
#include "core/topk.hpp"
#include "telemetry/telemetry.hpp"
#include "timing/delta_canon.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace insta::core {

using netlist::PinId;
using netlist::RiseFall;
using timing::ArcId;
using timing::ArcRecord;
using timing::ArcSense;
using timing::EndpointId;
using timing::StartpointId;
using util::check;

namespace {
constexpr float kInf = std::numeric_limits<float>::infinity();

/// Registered-once handles for the engine's hot-path counters. With
/// telemetry compiled out every handle is an empty no-op stub.
struct EngineMetrics {
  telemetry::Counter forward_passes;
  telemetry::Counter incremental_passes;
  telemetry::Counter backward_passes;
  telemetry::Counter levels;
  telemetry::Counter pins;
  telemetry::Counter arcs;
  telemetry::Counter merges;
  telemetry::Counter prunes;
  telemetry::Counter endpoints;
  telemetry::Counter cppr_lookups;
  // Frontier-sparse incremental pass counters.
  telemetry::Counter frontier_pins;
  telemetry::Counter early_terminations;
  telemetry::Counter endpoints_skipped;
  // Backward weight-reuse counters.
  telemetry::Counter bw_weight_pins_recomputed;
  telemetry::Counter bw_weight_pins_reused;
};

EngineMetrics& engine_metrics() {
  static EngineMetrics m = [] {
    auto& r = telemetry::MetricsRegistry::global();
    EngineMetrics em;
    em.forward_passes = r.counter("engine.forward_passes");
    em.incremental_passes = r.counter("engine.incremental_passes");
    em.backward_passes = r.counter("engine.backward_passes");
    em.levels = r.counter("engine.levels_processed");
    em.pins = r.counter("engine.pins_processed");
    em.arcs = r.counter("engine.arcs_traversed");
    em.merges = r.counter("engine.merge_ops");
    em.prunes = r.counter("engine.prune_hits");
    em.endpoints = r.counter("engine.endpoints_evaluated");
    em.cppr_lookups = r.counter("engine.cppr_lookups");
    em.frontier_pins = r.counter("engine.frontier_pins");
    em.early_terminations = r.counter("engine.early_terminations");
    em.endpoints_skipped = r.counter("engine.endpoints_skipped");
    em.bw_weight_pins_recomputed =
        r.counter("engine.backward_weight_pins_recomputed");
    em.bw_weight_pins_reused = r.counter("engine.backward_weight_pins_reused");
    return em;
  }();
  return m;
}

/// Thread-local re-merge destination of the sparse pass: each worker
/// re-merges a pin into this scratch, compares against the live store, and
/// commits only on change. Amortized allocation; sized to the largest
/// top_k seen on this thread.
struct TopKScratch {
  std::vector<float> arr, mu, sig;
  std::vector<std::int32_t> sp;
  std::int32_t cnt = 0;
  void ensure(std::int32_t k) {
    if (static_cast<std::int32_t>(arr.size()) < k) {
      const auto n = static_cast<std::size_t>(k);
      arr.resize(n);
      mu.resize(n);
      sig.resize(n);
      sp.resize(n);
    }
  }
};
thread_local TopKScratch tls_scratch;

}  // namespace

std::vector<std::string> EngineOptions::validate() const {
  std::vector<std::string> problems;
  if (top_k < 1) problems.emplace_back("top_k must be >= 1");
  if (!std::isfinite(tau) || tau <= 0.0f) {
    problems.emplace_back("tau must be finite and > 0");
  }
  if (!std::isfinite(wns_tau) || wns_tau <= 0.0f) {
    problems.emplace_back("wns_tau must be finite and > 0");
  }
  if (parallel_threshold < 0) {
    problems.emplace_back("parallel_threshold must be >= 0");
  }
  if (parallel_grain < 1) problems.emplace_back("parallel_grain must be >= 1");
  if (endpoint_grain < 1) problems.emplace_back("endpoint_grain must be >= 1");
  if (!std::isfinite(fast_math_tolerance) || fast_math_tolerance < 0.0f ||
      fast_math_tolerance >= 1.0f) {
    problems.emplace_back("fast_math_tolerance must be in [0, 1)");
  }
  // Corner-consistency checks mirror the analysis::check_corner_setup lint
  // rules; having them here too means no constructor path can accept a
  // corner set the linter would flag.
  for (std::size_t c = 0; c < corners.size(); ++c) {
    const CornerSpec& cs = corners[c];
    const std::string tag = "corner[" + std::to_string(c) + "]";
    if (cs.name.empty()) problems.emplace_back(tag + " has an empty name");
    if (!std::isfinite(cs.delay_scale) || cs.delay_scale <= 0.0f) {
      problems.emplace_back(tag + " (" + cs.name +
                            "): delay_scale must be finite and > 0");
    }
    if (!std::isfinite(cs.sigma_scale) || cs.sigma_scale <= 0.0f) {
      problems.emplace_back(tag + " (" + cs.name +
                            "): sigma_scale must be finite and > 0");
    }
    for (std::size_t o = 0; o < c; ++o) {
      if (corners[o].name == cs.name) {
        problems.emplace_back(tag + ": duplicate corner name '" + cs.name +
                              "'");
        break;
      }
    }
  }
  return problems;
}

Engine::Engine(const ref::GoldenSta& reference, EngineOptions options)
    : graph_(&reference.graph()),
      options_(std::move(options)),
      exceptions_(reference.exceptions()) {
  if (const std::vector<std::string> problems = options_.validate();
      !problems.empty()) {
    std::string msg = "Engine: invalid EngineOptions:";
    for (const std::string& p : problems) {
      msg += ' ';
      msg += p;
      msg += ';';
    }
    check(false, msg);
  }
  corners_ = options_.corners;
  if (corners_.empty()) corners_.push_back(CornerSpec{});
  C_ = corners_.size();
  nsigma_ = static_cast<float>(reference.constraints().nsigma);
  num_pins_ = graph_->design().num_pins();
  simd_avx2_ = util::simd::resolve(options_.simd);
  fast_math_ = options_.fast_math_tolerance > 0.0f && simd_avx2_;

  clone_structure(reference);
  clone_delays(reference);
  clone_sp_ep_attributes(reference);

  dirty_pin_.assign(C_ * num_pins_, 0);
  frontier_.resize(C_ * (level_start_.size() - 1));
  dirty_level_.assign(C_, std::numeric_limits<std::size_t>::max());
  dirty_eps_.resize(C_);
  recompute_aggregates();

  // Level-contiguous SoA layout: pins take plane positions in level order
  // (unleveled clock-network pins appended after), entries padded to the
  // 8-lane stride so every run starts on a vector-lane boundary. Corners
  // are the outermost (major) axis: plane c of every store is
  // byte-compatible with the whole store of a single-corner engine.
  tk_stride_ = (static_cast<std::size_t>(options_.top_k) + 7) & ~std::size_t{7};
  tk_pos_.assign(num_pins_, -1);
  {
    std::int32_t pos = 0;
    for (const PinId pin : level_pins_) {
      tk_pos_[static_cast<std::size_t>(pin)] = pos++;
    }
    for (std::size_t p = 0; p < num_pins_; ++p) {
      if (tk_pos_[p] < 0) tk_pos_[p] = pos++;
    }
  }
  corner_stride_ = num_pins_ * 2 * tk_stride_;
  const std::size_t planes = C_ * corner_stride_;
  tk_arr_.assign(planes, 0.0f);
  tk_mu_.assign(planes, 0.0f);
  tk_sig_.assign(planes, 0.0f);
  tk_sp_.assign(planes, -1);
  tk_cnt_.assign(C_ * num_pins_ * 2, 0);
  if (options_.enable_hold) {
    tk2_arr_.assign(planes, 0.0f);
    tk2_mu_.assign(planes, 0.0f);
    tk2_sig_.assign(planes, 0.0f);
    tk2_sp_.assign(planes, -1);
    tk2_cnt_.assign(C_ * num_pins_ * 2, 0);
  }

  const std::size_t slots = num_slots_;
  for (auto& w : w_) w.assign(C_ * slots, 0.0f);
  pin_grad_.assign(C_ * num_pins_ * 2, 0.0f);
  slot_grad_.assign(C_ * slots, 0.0f);
  arc_grad_.assign(C_ * graph_->num_arcs(), 0.0f);
  // Backward gather table and candidate scratch (see backward_cand in
  // topk_simd.hpp). The gather table is structure-only and corner-relative
  // (the kernel's base pointers carry the corner offset), so one copy
  // serves every corner; the candidate scratch is per-corner.
  for (const int rf : {0, 1}) {
    const auto rfi = static_cast<std::size_t>(rf);
    slot_ci_[rfi].resize(slots);
    bw_cand_[rfi].assign(C_ * slots, 0.0f);
    for (std::size_t s = 0; s < slots; ++s) {
      const int prf = rf ^ static_cast<int>(fi_neg_[s]);
      slot_ci_[rfi][s] =
          static_cast<std::int32_t>(cnt_index(fi_from_[s], prf));
    }
  }
  w_stale_.assign(C_ * num_pins_, 0);
  w_stale_pins_.resize(C_);
}

CornerId Engine::corner_id(std::string_view name) const {
  for (std::size_t c = 0; c < C_; ++c) {
    if (corners_[c].name == name) return static_cast<CornerId>(c);
  }
  return kAllCorners;
}

void Engine::clone_structure(const ref::GoldenSta& reference) {
  const auto& g = *graph_;
  (void)reference;

  level_start_.assign(g.num_levels() + 1, 0);
  for (std::size_t l = 0; l < g.num_levels(); ++l) {
    level_start_[l + 1] =
        level_start_[l] + static_cast<std::int32_t>(g.level(l).size());
  }
  level_pins_.assign(g.level_order().begin(), g.level_order().end());

  fi_start_.assign(num_pins_ + 1, 0);
  slot_of_arc_.assign(g.num_arcs(), -1);
  for (std::size_t p = 0; p < num_pins_; ++p) {
    fi_start_[p + 1] =
        fi_start_[p] +
        static_cast<std::int32_t>(g.fanin(static_cast<PinId>(p)).size());
  }
  const std::size_t slots = static_cast<std::size_t>(fi_start_[num_pins_]);
  num_slots_ = slots;
  fi_from_.resize(slots);
  fi_neg_.resize(slots);
  fi_arc_.resize(slots);
  {
    std::size_t s = 0;
    for (std::size_t p = 0; p < num_pins_; ++p) {
      for (const ArcId aid : g.fanin(static_cast<PinId>(p))) {
        const ArcRecord& a = g.arc(aid);
        fi_from_[s] = a.from;
        fi_neg_[s] = (a.sense == ArcSense::kNegative) ? 1 : 0;
        fi_arc_[s] = aid;
        slot_of_arc_[static_cast<std::size_t>(aid)] = static_cast<std::int32_t>(s);
        ++s;
      }
    }
  }

  fo_start_.assign(num_pins_ + 1, 0);
  for (std::size_t p = 0; p < num_pins_; ++p) {
    fo_start_[p + 1] =
        fo_start_[p] +
        static_cast<std::int32_t>(g.fanout(static_cast<PinId>(p)).size());
  }
  fo_slot_.resize(slots);
  fo_to_.resize(slots);
  {
    std::size_t s = 0;
    for (std::size_t p = 0; p < num_pins_; ++p) {
      for (const ArcId aid : g.fanout(static_cast<PinId>(p))) {
        const ArcRecord& a = g.arc(aid);
        fo_slot_[s] = slot_of_arc_[static_cast<std::size_t>(aid)];
        fo_to_[s] = a.to;
        ++s;
      }
    }
  }

  sp_of_pin_.assign(num_pins_, -1);
  for (std::size_t p = 0; p < num_pins_; ++p) {
    sp_of_pin_[p] = g.startpoint_of_pin(static_cast<PinId>(p));
  }
}

void Engine::clone_delays(const ref::GoldenSta& reference) {
  const timing::ArcDelays& d = reference.delays();
  const std::size_t slots = num_slots_;
  for (const int rf : {0, 1}) {
    amu_[static_cast<std::size_t>(rf)].resize(C_ * slots);
    asig_[static_cast<std::size_t>(rf)].resize(C_ * slots);
  }
  for (std::size_t c = 0; c < C_; ++c) {
    const float ds = corners_[c].delay_scale;
    const float ss = corners_[c].sigma_scale;
    const std::size_t soff = slot_off(static_cast<CornerId>(c));
    for (const int rf : {0, 1}) {
      const auto rfi = static_cast<std::size_t>(rf);
      for (std::size_t s = 0; s < slots; ++s) {
        const auto arc = static_cast<std::size_t>(fi_arc_[s]);
        amu_[rfi][soff + s] = scaled(d.mu[rf][arc], ds);
        asig_[rfi][soff + s] = scaled(d.sigma[rf][arc], ss);
      }
    }
  }
}

void Engine::clone_sp_ep_attributes(const ref::GoldenSta& reference) {
  const auto& g = *graph_;
  const timing::ClockAnalysis& clock = reference.clock();

  const std::size_t num_sps = g.startpoints().size();
  num_sps_ = num_sps;
  for (const int rf : {0, 1}) {
    sp_mu_[static_cast<std::size_t>(rf)].resize(C_ * num_sps);
    sp_sig_[static_cast<std::size_t>(rf)].resize(C_ * num_sps);
  }
  sp_ck_mu_.assign(num_sps, 0.0f);
  sp_ck_sig2_.assign(num_sps, 0.0f);
  sp_node_.assign(num_sps, -1);
  launch_sp_of_arc_.assign(g.num_arcs(), -1);
  for (std::size_t s = 0; s < num_sps; ++s) {
    const timing::Startpoint& sp = g.startpoints()[s];
    const ref::GoldenSta::SpInit init =
        reference.sp_init(static_cast<StartpointId>(s));
    if (sp.clocked) {
      sp_node_[s] = clock.node_of_ff(sp.cell);
      sp_ck_mu_[s] = static_cast<float>(clock.ck_mu(sp.cell));
      sp_ck_sig2_[s] = static_cast<float>(clock.ck_sig2(sp.cell));
      const auto [first, last] = g.cell_arcs(sp.cell);
      check(last - first == 1, "Engine: FF must have one launch arc");
      launch_sp_of_arc_[static_cast<std::size_t>(first)] =
          static_cast<std::int32_t>(s);
    }
    // The corner scales apply to the *launch* portion of the initial
    // arrival, not the shared clock-network part: mu splits additively
    // (ck + launch), sigma by variance (ck_sig2 + launch_sig2). At scale
    // 1.0f both branches reduce to the exact pre-scaling floats.
    for (std::size_t c = 0; c < C_; ++c) {
      const float ds = corners_[c].delay_scale;
      const float ss = corners_[c].sigma_scale;
      const std::size_t spoff = sp_off(static_cast<CornerId>(c));
      for (const int rf : {0, 1}) {
        const auto rfi = static_cast<std::size_t>(rf);
        const auto base_mu = static_cast<float>(init.mu[rfi]);
        const auto base_sig = static_cast<float>(init.sigma[rfi]);
        sp_mu_[rfi][spoff + s] =
            ds == 1.0f ? base_mu
                       : sp_ck_mu_[s] + (base_mu - sp_ck_mu_[s]) * ds;
        sp_sig_[rfi][spoff + s] =
            ss == 1.0f
                ? base_sig
                : std::sqrt(sp_ck_sig2_[s] +
                            std::max(0.0f,
                                     base_sig * base_sig - sp_ck_sig2_[s]) *
                                ss * ss);
      }
    }
  }

  const std::size_t num_eps = g.endpoints().size();
  ep_pin_.resize(num_eps);
  ep_base_req_.resize(num_eps);
  ep_period_.resize(num_eps);
  ep_node_.assign(num_eps, -1);
  slack_.assign(C_ * num_eps, kInf);
  ep_worst_rf_.assign(C_ * num_eps, 0);
  if (options_.enable_hold) {
    ep_hold_base_.assign(num_eps, std::numeric_limits<float>::quiet_NaN());
    hold_slack_.assign(C_ * num_eps, kInf);
  }
  ep_of_pin_.assign(num_pins_, -1);
  for (std::size_t e = 0; e < num_eps; ++e) {
    const timing::Endpoint& ep = g.endpoints()[e];
    ep_pin_[e] = ep.pin;
    check(ep_of_pin_[static_cast<std::size_t>(ep.pin)] < 0,
          "Engine: endpoint pins must be unique (sparse endpoint lookup)");
    ep_of_pin_[static_cast<std::size_t>(ep.pin)] = static_cast<std::int32_t>(e);
    ep_base_req_[e] =
        static_cast<float>(reference.ep_base_required(static_cast<EndpointId>(e)));
    ep_period_[e] =
        static_cast<float>(reference.ep_period(static_cast<EndpointId>(e)));
    if (ep.clocked) {
      ep_node_[e] = clock.node_of_ff(ep.cell);
      if (options_.enable_hold) {
        const netlist::LibCell& lc = g.design().libcell_of(ep.cell);
        ep_hold_base_[e] =
            static_cast<float>(clock.late_ck(ep.cell) + lc.hold);
      }
    }
  }

  ck_parent_.assign(clock.parents().begin(), clock.parents().end());
  ck_depth_.assign(clock.depths().begin(), clock.depths().end());
  ck_sig2_.resize(clock.node_sig2().size());
  for (std::size_t n = 0; n < ck_sig2_.size(); ++n) {
    ck_sig2_[n] = static_cast<float>(clock.node_sig2()[n]);
  }
}

void Engine::annotate(std::span<const timing::ArcDelta> deltas,
                      CornerId corner) {
  INSTA_CHECK(corner == kAllCorners ||
                  (corner >= 0 && static_cast<std::size_t>(corner) < C_),
              "Engine::annotate: corner id " + std::to_string(corner) +
                  " out of range [0, " + std::to_string(C_) + ")");
  const CornerId c0 = corner == kAllCorners ? 0 : corner;
  const CornerId c1 = corner == kAllCorners ? static_cast<CornerId>(C_)
                                            : corner + 1;
  for (const timing::ArcDelta& d : deltas) {
    // Always-on range check: an out-of-range arc id would scribble over the
    // flat stores in Release. Full structured validation (clock-network
    // arcs, non-finite values, duplicates) is annotate_checked()'s job.
    INSTA_CHECK(d.arc >= 0 && static_cast<std::size_t>(d.arc) <
                                  slot_of_arc_.size(),
                "Engine::annotate: arc id " + std::to_string(d.arc) +
                    " out of range (use annotate_checked for structured "
                    "diagnostics)");
    INSTA_DCHECK(std::isfinite(d.mu[0]) && std::isfinite(d.mu[1]) &&
                     d.sigma[0] >= 0.0 && d.sigma[1] >= 0.0,
                 "Engine::annotate: non-finite mean or negative sigma");
    const auto arc = static_cast<std::size_t>(d.arc);
    const std::int32_t slot = slot_of_arc_[arc];
    {
      // Seed the sparse frontier at the arc's sink pin in every targeted
      // corner. For launch arcs the sink is the FF output pin, whose
      // fanin-less merge re-reads the startpoint attributes updated below.
      const PinId to = graph_->arc(d.arc).to;
      const int lvl = graph_->level_of(to);
      for (CornerId c = c0; c < c1; ++c) mark_dirty(to, lvl, c);
    }
    if (slot >= 0) {
      for (CornerId c = c0; c < c1; ++c) {
        const float ds = corners_[static_cast<std::size_t>(c)].delay_scale;
        const float ss = corners_[static_cast<std::size_t>(c)].sigma_scale;
        const std::size_t soff = slot_off(c);
        for (const int rf : {0, 1}) {
          const auto rfi = static_cast<std::size_t>(rf);
          amu_[rfi][soff + static_cast<std::size_t>(slot)] =
              scaled(d.mu[rfi], ds);
          asig_[rfi][soff + static_cast<std::size_t>(slot)] =
              scaled(d.sigma[rfi], ss);
        }
      }
      continue;
    }
    const std::int32_t sp = launch_sp_of_arc_[arc];
    check(sp >= 0,
          "Engine::annotate: arc is neither a data arc nor a launch arc "
          "(clock-network arcs require re-initialization)");
    const auto spi = static_cast<std::size_t>(sp);
    for (CornerId c = c0; c < c1; ++c) {
      const float ds = corners_[static_cast<std::size_t>(c)].delay_scale;
      const float ss = corners_[static_cast<std::size_t>(c)].sigma_scale;
      const std::size_t spoff = sp_off(c);
      for (const int rf : {0, 1}) {
        const auto rfi = static_cast<std::size_t>(rf);
        const float dsig = scaled(d.sigma[rfi], ss);
        sp_mu_[rfi][spoff + spi] = sp_ck_mu_[spi] + scaled(d.mu[rfi], ds);
        sp_sig_[rfi][spoff + spi] =
            std::sqrt(sp_ck_sig2_[spi] + dsig * dsig);
      }
    }
  }
}

timing::ArcDelta Engine::read_annotation(ArcId arc, CornerId corner) const {
  INSTA_CHECK(corner >= 0 && static_cast<std::size_t>(corner) < C_,
              "Engine::read_annotation: corner id " + std::to_string(corner) +
                  " out of range [0, " + std::to_string(C_) + ")");
  const std::int32_t slot = slot_of_arc_[static_cast<std::size_t>(arc)];
  timing::ArcDelta d;
  d.arc = arc;
  if (slot >= 0) {
    const std::size_t soff = slot_off(corner);
    for (const int rf : {0, 1}) {
      const auto rfi = static_cast<std::size_t>(rf);
      d.mu[rfi] = static_cast<double>(
          amu_[rfi][soff + static_cast<std::size_t>(slot)]);
      d.sigma[rfi] = static_cast<double>(
          asig_[rfi][soff + static_cast<std::size_t>(slot)]);
    }
    return d;
  }
  const std::int32_t sp = launch_sp_of_arc_[static_cast<std::size_t>(arc)];
  check(sp >= 0, "read_annotation: arc is neither a data arc nor a launch arc");
  // Launch arcs are folded into the startpoint's initial arrival; undo that
  // fold: mu = sp_mu - ck_mu, sigma^2 = sp_sigma^2 - ck_sigma^2. The result
  // is the corner-local (scaled) launch delay.
  const auto spi = static_cast<std::size_t>(sp);
  const std::size_t spoff = sp_off(corner);
  for (const int rf : {0, 1}) {
    const auto rfi = static_cast<std::size_t>(rf);
    d.mu[rfi] =
        static_cast<double>(sp_mu_[rfi][spoff + spi] - sp_ck_mu_[spi]);
    const float var = sp_sig_[rfi][spoff + spi] * sp_sig_[rfi][spoff + spi] -
                      sp_ck_sig2_[spi];
    d.sigma[rfi] = std::sqrt(std::max(0.0, static_cast<double>(var)));
  }
  return d;
}

namespace {
/// Per-delta validity predicate shared by check_deltas and annotate_checked:
/// true when annotate() can apply the delta without throwing or corrupting
/// state. `num_arcs` bounds the id space; slot/launch lookups classify the
/// arc kind.
bool delta_is_error_free(const timing::ArcDelta& d, std::size_t num_arcs,
                         const std::vector<std::int32_t>& slot_of_arc,
                         const std::vector<std::int32_t>& launch_sp_of_arc) {
  if (d.arc < 0 || static_cast<std::size_t>(d.arc) >= num_arcs) return false;
  const auto arc = static_cast<std::size_t>(d.arc);
  if (slot_of_arc[arc] < 0 && launch_sp_of_arc[arc] < 0) return false;
  for (const int rf : {0, 1}) {
    const auto rfi = static_cast<std::size_t>(rf);
    if (!std::isfinite(d.mu[rfi])) return false;
    if (!std::isfinite(d.sigma[rfi]) || d.sigma[rfi] < 0.0) return false;
  }
  return true;
}
}  // namespace

analysis::LintReport Engine::check_deltas(
    std::span<const timing::ArcDelta> deltas, CornerId corner) const {
  analysis::LintReport report;
  if (corner != kAllCorners &&
      (corner < 0 || static_cast<std::size_t>(corner) >= C_)) {
    analysis::Diagnostic d;
    d.rule = "corner-unknown";
    d.severity = analysis::Severity::kError;
    d.kind = analysis::ObjectKind::kNone;
    d.where = "corner " + std::to_string(corner);
    d.message = "corner id out of range [0, " + std::to_string(C_) +
                ") (use kAllCorners to broadcast)";
    report.add(std::move(d));
  }
  // Per-rule reporting cap, linter-style: a garbage input file should not
  // produce a million diagnostics, but the counts stay exact.
  constexpr std::size_t kCap = 32;
  struct RuleCount {
    const char* rule;
    std::size_t n = 0;
  };
  RuleCount range{"delta-arc-range"};
  RuleCount clock{"delta-clock-arc"};
  RuleCount value{"delta-bad-value"};
  RuleCount dup{"delta-duplicate-arc"};
  auto add = [&report](RuleCount& rc, analysis::Severity sev, timing::ArcId arc,
                       std::string message) {
    if (++rc.n > kCap) return;
    analysis::Diagnostic d;
    d.rule = rc.rule;
    d.severity = sev;
    d.kind = analysis::ObjectKind::kArc;
    d.object = arc;
    d.where = "arc " + std::to_string(arc);
    d.message = std::move(message);
    report.add(std::move(d));
  };

  const std::size_t num_arcs = slot_of_arc_.size();
  // Duplicate detection is delegated to the shared canonicalizer — the
  // same helper that keys the serve layer's what-if cache — so "what
  // counts as the same delta-set" has exactly one definition.
  std::vector<timing::ArcId> dup_arcs;
  static_cast<void>(timing::canonicalize_deltas(deltas, &dup_arcs));
  for (const timing::ArcId a : dup_arcs) {
    if (a < 0 || static_cast<std::size_t>(a) >= num_arcs) continue;
    add(dup, analysis::Severity::kWarning, a,
        "arc annotated more than once in this delta-set (last write wins)");
  }
  for (const timing::ArcDelta& d : deltas) {
    if (d.arc < 0 || static_cast<std::size_t>(d.arc) >= num_arcs) {
      add(range, analysis::Severity::kError, d.arc,
          "arc id out of range [0, " + std::to_string(num_arcs) + ")");
      continue;
    }
    const auto arc = static_cast<std::size_t>(d.arc);
    if (slot_of_arc_[arc] < 0 && launch_sp_of_arc_[arc] < 0) {
      add(clock, analysis::Severity::kError, d.arc,
          "arc is neither a data arc nor a launch arc (clock-network arcs "
          "require re-initialization)");
      continue;
    }
    for (const int rf : {0, 1}) {
      const auto rfi = static_cast<std::size_t>(rf);
      if (!std::isfinite(d.mu[rfi]) || !std::isfinite(d.sigma[rfi]) ||
          d.sigma[rfi] < 0.0) {
        add(value, analysis::Severity::kError, d.arc,
            "non-finite mean or negative sigma");
        break;
      }
    }
  }
  for (const RuleCount* rc : {&range, &clock, &value, &dup}) {
    if (rc->n > kCap) report.add_suppressed(rc->rule, rc->n - kCap);
  }
  return report;
}

analysis::LintReport Engine::annotate_checked(
    std::span<const timing::ArcDelta> deltas, CornerId corner) {
  analysis::LintReport report = check_deltas(deltas, corner);
  // An unknown corner poisons the whole set: there is no plane to apply
  // even the clean deltas to.
  if (corner != kAllCorners &&
      (corner < 0 || static_cast<std::size_t>(corner) >= C_)) {
    return report;
  }
  if (!report.has_errors()) {
    annotate(deltas, corner);
    return report;
  }
  // Apply the clean subset in input order; erroneous entries are skipped so
  // one bad delta in a what-if file does not poison the rest.
  std::vector<timing::ArcDelta> valid;
  valid.reserve(deltas.size());
  for (const timing::ArcDelta& d : deltas) {
    if (delta_is_error_free(d, slot_of_arc_.size(), slot_of_arc_,
                            launch_sp_of_arc_)) {
      valid.push_back(d);
    }
  }
  annotate(valid, corner);
  return report;
}

// ---- Transaction ------------------------------------------------------------

Engine::Transaction::Transaction(Engine& engine) : engine_(&engine) {
  tns_ = engine.tns_cache_;
  nviol_ = engine.nviol_cache_;
  ths_ = engine.ths_cache_;
  nhold_viol_ = engine.nhold_viol_cache_;
  wns_ = engine.wns_cache_;
  wns_any_ = engine.wns_any_;
  wns_valid_ = engine.wns_valid_;
  whs_ = engine.whs_cache_;
  whs_any_ = engine.whs_any_;
  whs_valid_ = engine.whs_valid_;
}

Engine::Transaction::Transaction(Transaction&& other) noexcept
    : engine_(other.engine_),
      undo_(std::move(other.undo_)),
      applied_(std::move(other.applied_)),
      tns_(std::move(other.tns_)),
      nviol_(std::move(other.nviol_)),
      ths_(std::move(other.ths_)),
      nhold_viol_(std::move(other.nhold_viol_)),
      wns_(std::move(other.wns_)),
      wns_any_(std::move(other.wns_any_)),
      wns_valid_(std::move(other.wns_valid_)),
      whs_(std::move(other.whs_)),
      whs_any_(std::move(other.whs_any_)),
      whs_valid_(std::move(other.whs_valid_)) {
  other.engine_ = nullptr;
}

Engine::Transaction::~Transaction() {
  if (engine_ != nullptr) rollback();
}

void Engine::Transaction::record(std::span<const timing::ArcDelta> deltas) {
  Engine& e = *engine_;
  const std::size_t C = e.C_;
  for (const timing::ArcDelta& d : deltas) {
    // Entries annotate() will reject are not recorded; delta-sets are small
    // (ECO-sized), so the first-touch dedup is a linear scan.
    if (d.arc < 0 || static_cast<std::size_t>(d.arc) >= e.slot_of_arc_.size()) {
      continue;
    }
    bool seen = false;
    for (const Undo& u : undo_) {
      if (u.arc == d.arc) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    const auto arc = static_cast<std::size_t>(d.arc);
    Undo u;
    u.arc = d.arc;
    u.sink = e.graph_->arc(d.arc).to;
    u.mu.resize(C * 2);
    u.sig.resize(C * 2);
    const std::int32_t slot = e.slot_of_arc_[arc];
    // All corners are snapshotted regardless of which corner the caller
    // targets: rollback is then exact whatever mix of targeted and
    // broadcast annotations follows the first touch.
    if (slot >= 0) {
      u.slot = slot;
      for (std::size_t c = 0; c < C; ++c) {
        const std::size_t soff = e.slot_off(static_cast<CornerId>(c));
        for (const int rf : {0, 1}) {
          const auto rfi = static_cast<std::size_t>(rf);
          u.mu[c * 2 + rfi] =
              e.amu_[rfi][soff + static_cast<std::size_t>(slot)];
          u.sig[c * 2 + rfi] =
              e.asig_[rfi][soff + static_cast<std::size_t>(slot)];
        }
      }
    } else {
      const std::int32_t sp = e.launch_sp_of_arc_[arc];
      if (sp < 0) continue;  // clock-network arc: annotate() throws below
      u.sp = sp;
      for (std::size_t c = 0; c < C; ++c) {
        const std::size_t spoff = e.sp_off(static_cast<CornerId>(c));
        for (const int rf : {0, 1}) {
          const auto rfi = static_cast<std::size_t>(rf);
          u.mu[c * 2 + rfi] =
              e.sp_mu_[rfi][spoff + static_cast<std::size_t>(sp)];
          u.sig[c * 2 + rfi] =
              e.sp_sig_[rfi][spoff + static_cast<std::size_t>(sp)];
        }
      }
    }
    undo_.push_back(std::move(u));
  }
}

void Engine::Transaction::annotate(std::span<const timing::ArcDelta> deltas,
                                   CornerId corner) {
  check(engine_ != nullptr,
        "Transaction::annotate: transaction already committed or rolled back");
  record(deltas);
  applied_.push_back({corner, {deltas.begin(), deltas.end()}});
  engine_->annotate(deltas, corner);
}

void Engine::Transaction::commit() {
  check(engine_ != nullptr,
        "Transaction::commit: transaction already committed or rolled back");
  engine_->txn_active_ = false;
  engine_ = nullptr;
  // applied_ is intentionally kept: a committed transaction's records are
  // its replication payload (see applied()).
  undo_.clear();
}

void Engine::Transaction::rollback() {
  check(engine_ != nullptr,
        "Transaction::rollback: transaction already committed or rolled back");
  Engine& e = *engine_;
  if (!undo_.empty()) {
    // Restore the raw delay floats (not read_annotation round-trips: the
    // launch-arc sigma fold does not invert exactly in float) and seed the
    // frontier at each touched sink in every corner, exactly as a broadcast
    // annotate() would. Corners the edits never touched restore identical
    // bytes, so their sparse re-merge early-terminates at the first pin.
    for (const Undo& u : undo_) {
      for (std::size_t c = 0; c < e.C_; ++c) {
        for (const int rf : {0, 1}) {
          const auto rfi = static_cast<std::size_t>(rf);
          if (u.slot >= 0) {
            e.amu_[rfi][e.slot_off(static_cast<CornerId>(c)) +
                        static_cast<std::size_t>(u.slot)] = u.mu[c * 2 + rfi];
            e.asig_[rfi][e.slot_off(static_cast<CornerId>(c)) +
                         static_cast<std::size_t>(u.slot)] = u.sig[c * 2 + rfi];
          } else {
            e.sp_mu_[rfi][e.sp_off(static_cast<CornerId>(c)) +
                          static_cast<std::size_t>(u.sp)] = u.mu[c * 2 + rfi];
            e.sp_sig_[rfi][e.sp_off(static_cast<CornerId>(c)) +
                           static_cast<std::size_t>(u.sp)] = u.sig[c * 2 + rfi];
          }
        }
        e.mark_dirty(u.sink, e.graph_->level_of(u.sink),
                     static_cast<CornerId>(c));
      }
    }
    e.run_forward_incremental();
    // The sparse pass restored every slack bitwise; restoring the cache
    // snapshot on top also undoes the float drift of delta folding, so
    // aggregates come back exactly.
    e.tns_cache_ = tns_;
    e.nviol_cache_ = nviol_;
    e.ths_cache_ = ths_;
    e.nhold_viol_cache_ = nhold_viol_;
    e.wns_cache_ = wns_;
    e.wns_any_ = wns_any_;
    e.wns_valid_ = wns_valid_;
    e.whs_cache_ = whs_;
    e.whs_any_ = whs_any_;
    e.whs_valid_ = whs_valid_;
    undo_.clear();
  }
  applied_.clear();  // the edits no longer exist; there is nothing to replay
  e.txn_active_ = false;
  engine_ = nullptr;
}

Engine::Transaction Engine::begin_edit() {
  check(!txn_active_,
        "Engine::begin_edit: a Transaction is already active on this engine");
  check(timing_clean(),
        "Engine::begin_edit: timing must be clean (run run_forward() or "
        "run_forward_incremental() first)");
  txn_active_ = true;
  return Transaction(*this);
}

// ---- state export / import (replication) -------------------------------------

EngineState Engine::export_state() const {
  check(!txn_active_,
        "Engine::export_state: a Transaction is active (commit or roll back "
        "first so the image is a committed generation)");
  check(timing_clean(),
        "Engine::export_state: timing must be clean (run a forward pass "
        "first)");
  EngineState s;
  s.generation = generation_;
  s.num_corners = static_cast<std::uint32_t>(C_);
  s.num_pins = num_pins_;
  s.num_slots = num_slots_;
  s.num_sps = num_sps_;
  s.num_eps = ep_pin_.size();
  s.num_arcs = slot_of_arc_.size();
  s.top_k = static_cast<std::int32_t>(options_.top_k);
  s.tk_stride = static_cast<std::uint32_t>(tk_stride_);
  s.enable_hold = options_.enable_hold ? 1 : 0;
  s.corners = corners_;
  s.amu = amu_;
  s.asig = asig_;
  s.sp_mu = sp_mu_;
  s.sp_sig = sp_sig_;
  s.tk_arr = tk_arr_;
  s.tk_mu = tk_mu_;
  s.tk_sig = tk_sig_;
  s.tk_sp = tk_sp_;
  s.tk_cnt = tk_cnt_;
  s.tk2_arr = tk2_arr_;
  s.tk2_mu = tk2_mu_;
  s.tk2_sig = tk2_sig_;
  s.tk2_sp = tk2_sp_;
  s.tk2_cnt = tk2_cnt_;
  s.slack = slack_;
  s.hold_slack = hold_slack_;
  s.ep_worst_rf = ep_worst_rf_;
  s.ep_base_req = ep_base_req_;
  s.ep_hold_base = ep_hold_base_;
  s.tns = tns_cache_;
  s.nviol = nviol_cache_;
  s.ths = ths_cache_;
  s.nhold_viol = nhold_viol_cache_;
  s.wns = wns_cache_;
  s.wns_any = wns_any_;
  s.wns_valid = wns_valid_;
  s.whs = whs_cache_;
  s.whs_any = whs_any_;
  s.whs_valid = whs_valid_;
  return s;
}

void Engine::import_state(const EngineState& s) {
  check(!txn_active_,
        "Engine::import_state: a Transaction is active on this engine");
  auto require = [](bool ok, std::string_view what) {
    INSTA_CHECK(ok, "Engine::import_state: snapshot does not match this "
                    "engine's design/options: " +
                        std::string(what));
  };
  require(s.num_corners == C_, "corner count");
  require(s.num_pins == num_pins_, "pin count");
  require(s.num_slots == num_slots_, "fanin slot count");
  require(s.num_sps == num_sps_, "startpoint count");
  require(s.num_eps == ep_pin_.size(), "endpoint count");
  require(s.num_arcs == slot_of_arc_.size(), "arc count");
  require(s.top_k == static_cast<std::int32_t>(options_.top_k), "top_k");
  require(s.tk_stride == tk_stride_, "tk_stride");
  require(s.enable_hold == (options_.enable_hold ? 1 : 0), "enable_hold");
  require(s.corners.size() == corners_.size(), "corner list size");
  for (std::size_t c = 0; c < corners_.size(); ++c) {
    require(s.corners[c].name == corners_[c].name &&
                s.corners[c].delay_scale == corners_[c].delay_scale &&
                s.corners[c].sigma_scale == corners_[c].sigma_scale,
            "corner spec \"" + corners_[c].name + "\"");
  }
  auto same_floats = [](const std::vector<float>& a,
                        const std::vector<float>& b) {
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
  };
  // Required-time attributes are the design/constraints fingerprint: a
  // byte-for-byte match here (together with the shape checks above) is
  // what makes "same design file on both ends" an enforced contract
  // instead of an operator convention.
  require(same_floats(s.ep_base_req, ep_base_req_),
          "endpoint required times (different constraints?)");
  require(same_floats(s.ep_hold_base, ep_hold_base_),
          "endpoint hold required times");
  auto sized = [&require](const auto& v, const auto& live, const char* what) {
    require(v.size() == live.size(), what);
  };
  for (const int rf : {0, 1}) {
    const auto rfi = static_cast<std::size_t>(rf);
    sized(s.amu[rfi], amu_[rfi], "amu plane size");
    sized(s.asig[rfi], asig_[rfi], "asig plane size");
    sized(s.sp_mu[rfi], sp_mu_[rfi], "sp_mu plane size");
    sized(s.sp_sig[rfi], sp_sig_[rfi], "sp_sig plane size");
  }
  sized(s.tk_arr, tk_arr_, "tk_arr plane size");
  sized(s.tk_mu, tk_mu_, "tk_mu plane size");
  sized(s.tk_sig, tk_sig_, "tk_sig plane size");
  sized(s.tk_sp, tk_sp_, "tk_sp plane size");
  sized(s.tk_cnt, tk_cnt_, "tk_cnt plane size");
  sized(s.tk2_arr, tk2_arr_, "tk2_arr plane size");
  sized(s.tk2_mu, tk2_mu_, "tk2_mu plane size");
  sized(s.tk2_sig, tk2_sig_, "tk2_sig plane size");
  sized(s.tk2_sp, tk2_sp_, "tk2_sp plane size");
  sized(s.tk2_cnt, tk2_cnt_, "tk2_cnt plane size");
  sized(s.slack, slack_, "slack plane size");
  sized(s.hold_slack, hold_slack_, "hold_slack plane size");
  sized(s.ep_worst_rf, ep_worst_rf_, "ep_worst_rf plane size");
  sized(s.tns, tns_cache_, "tns cache size");
  sized(s.nviol, nviol_cache_, "violation cache size");
  sized(s.ths, ths_cache_, "ths cache size");
  sized(s.nhold_viol, nhold_viol_cache_, "hold-violation cache size");
  sized(s.wns, wns_cache_, "wns cache size");
  sized(s.wns_any, wns_any_, "wns_any cache size");
  sized(s.wns_valid, wns_valid_, "wns_valid cache size");
  sized(s.whs, whs_cache_, "whs cache size");
  sized(s.whs_any, whs_any_, "whs_any cache size");
  sized(s.whs_valid, whs_valid_, "whs_valid cache size");

  amu_ = s.amu;
  asig_ = s.asig;
  sp_mu_ = s.sp_mu;
  sp_sig_ = s.sp_sig;
  tk_arr_ = s.tk_arr;
  tk_mu_ = s.tk_mu;
  tk_sig_ = s.tk_sig;
  tk_sp_ = s.tk_sp;
  tk_cnt_ = s.tk_cnt;
  tk2_arr_ = s.tk2_arr;
  tk2_mu_ = s.tk2_mu;
  tk2_sig_ = s.tk2_sig;
  tk2_sp_ = s.tk2_sp;
  tk2_cnt_ = s.tk2_cnt;
  slack_ = s.slack;
  hold_slack_ = s.hold_slack;
  ep_worst_rf_ = s.ep_worst_rf;
  tns_cache_ = s.tns;
  nviol_cache_ = s.nviol;
  ths_cache_ = s.ths;
  nhold_viol_cache_ = s.nhold_viol;
  wns_cache_ = s.wns;
  wns_any_ = s.wns_any;
  wns_valid_ = s.wns_valid;
  whs_cache_ = s.whs;
  whs_any_ = s.whs_any;
  whs_valid_ = s.whs_valid;

  // The image replaced whatever was pending: drop any queued frontier state
  // so the engine is clean at the imported generation.
  const std::size_t num_levels = level_start_.size() - 1;
  for (CornerId c = 0; c < static_cast<CornerId>(C_); ++c) {
    const std::size_t poff = pin_off(c);
    for (std::size_t l = 0; l < num_levels; ++l) {
      std::vector<PinId>& fr =
          frontier_[static_cast<std::size_t>(c) * num_levels + l];
      for (const PinId pin : fr) {
        dirty_pin_[poff + static_cast<std::size_t>(pin)] = 0;
      }
      fr.clear();
    }
    dirty_eps_[static_cast<std::size_t>(c)].clear();
  }
  dirty_level_.assign(C_, std::numeric_limits<std::size_t>::max());
  full_dirty_ = false;
  generation_ = s.generation;
  // Every Top-K store may have changed: no backward weight survives, and
  // the generation-stamped merged caches must not survive either — the
  // imported generation number can collide with one this engine already
  // cached under different state (e.g. a replica that diverged and is
  // being resynced).
  invalidate_weights();
  merged_setup_gen_ = std::numeric_limits<std::uint64_t>::max();
  merged_hold_gen_ = std::numeric_limits<std::uint64_t>::max();
  last_pass_ = SparseStats{};
}

template <bool kEarly>
void Engine::merge_pin_rf(PinId pin, int rf, CornerId corner,
                          const TopKView& dst, ForwardCounters& fc) {
  merge_pin_values<kEarly>(LiveValues(*this, corner), pin, rf, dst, fc);
}

void Engine::process_pin(PinId pin, CornerId corner, ForwardCounters& fc) {
  const auto k = static_cast<std::int32_t>(options_.top_k);
  const std::size_t tkoff = tk_off(corner);
  const std::size_t cntoff = cnt_off(corner);
  ++fc.pins;
  for (int rf = 0; rf < 2; ++rf) {
    const std::size_t base = tkoff + entry_base(pin, rf);
    std::int32_t& cnt = tk_cnt_[cntoff + cnt_index(pin, rf)];
    const TopKView view{&tk_arr_[base], &tk_mu_[base], &tk_sig_[base],
                        &tk_sp_[base], k, &cnt};
    merge_pin_rf<false>(pin, rf, corner, view, fc);
    INSTA_DCHECK(cnt <= k, "process_pin: Top-K count exceeds capacity");
    INSTA_DCHECK(cnt == 0 || std::isfinite(tk_arr_[base]),
                 "process_pin: non-finite worst arrival");
  }
}

void Engine::process_pin_early(PinId pin, CornerId corner,
                               ForwardCounters& fc) {
  const auto k = static_cast<std::int32_t>(options_.top_k);
  const std::size_t tkoff = tk_off(corner);
  const std::size_t cntoff = cnt_off(corner);
  ++fc.pins;
  for (int rf = 0; rf < 2; ++rf) {
    const std::size_t base = tkoff + entry_base(pin, rf);
    std::int32_t& cnt = tk2_cnt_[cntoff + cnt_index(pin, rf)];
    const TopKView view{&tk2_arr_[base], &tk2_mu_[base], &tk2_sig_[base],
                        &tk2_sp_[base], k, &cnt};
    merge_pin_rf<true>(pin, rf, corner, view, fc);
  }
}

bool Engine::reprocess_pin_sparse(PinId pin, CornerId corner,
                                  ForwardCounters& fc) {
  const auto k = static_cast<std::int32_t>(options_.top_k);
  const std::size_t tkoff = tk_off(corner);
  const std::size_t cntoff = cnt_off(corner);
  TopKScratch& sc = tls_scratch;
  sc.ensure(k);
  const TopKView scratch{sc.arr.data(), sc.mu.data(), sc.sig.data(),
                         sc.sp.data(), k, &sc.cnt};
  bool changed = false;

  ++fc.pins;
  for (int rf = 0; rf < 2; ++rf) {
    merge_pin_rf<false>(pin, rf, corner, scratch, fc);
    const std::size_t base = tkoff + entry_base(pin, rf);
    std::int32_t& cnt = tk_cnt_[cntoff + cnt_index(pin, rf)];
    const TopKView live{&tk_arr_[base], &tk_mu_[base], &tk_sig_[base],
                        &tk_sp_[base], k, &cnt};
    if (!topk_equal(scratch, live)) {
      topk_copy(live, scratch);
      changed = true;
    }
  }
  if (options_.enable_hold) {
    ++fc.pins;
    for (int rf = 0; rf < 2; ++rf) {
      merge_pin_rf<true>(pin, rf, corner, scratch, fc);
      const std::size_t base = tkoff + entry_base(pin, rf);
      std::int32_t& cnt = tk2_cnt_[cntoff + cnt_index(pin, rf)];
      const TopKView live{&tk2_arr_[base], &tk2_mu_[base], &tk2_sig_[base],
                          &tk2_sp_[base], k, &cnt};
      if (!topk_equal(scratch, live)) {
        topk_copy(live, scratch);
        changed = true;
      }
    }
  }
  return changed;
}

void Engine::mark_dirty(PinId pin, int lvl, CornerId corner) {
  if (lvl < 0) return;
  const std::size_t p = pin_off(corner) + static_cast<std::size_t>(pin);
  if (dirty_pin_[p] != 0) return;
  dirty_pin_[p] = 1;
  const std::size_t num_levels = level_start_.size() - 1;
  frontier_[static_cast<std::size_t>(corner) * num_levels +
            static_cast<std::size_t>(lvl)]
      .push_back(pin);
  auto& dl = dirty_level_[static_cast<std::size_t>(corner)];
  dl = std::min(dl, static_cast<std::size_t>(lvl));
}

void Engine::forward_from(std::size_t first_level) {
  INSTA_TRACE_SCOPE("engine.forward",
                    static_cast<std::int64_t>(first_level));
  EngineMetrics& em = engine_metrics();
  em.forward_passes.inc();
  auto& pool = util::ThreadPool::global();
  const std::size_t num_levels = level_start_.size() - 1;
  const auto threshold = static_cast<std::size_t>(options_.parallel_threshold);
  const auto grain = static_cast<std::size_t>(options_.parallel_grain);
  const auto C = static_cast<CornerId>(C_);
  // Level-synchronous independence invariant (Algorithm 1): a pin's fanin
  // sources must all sit at strictly lower levels, otherwise the parallel
  // per-level kernel below reads a Top-K store while another worker writes
  // it. Compiled out in release; the analysis::Linter checks the same
  // property ("level-inversion") as a reportable diagnostic.
#ifndef NDEBUG
  for (std::size_t s = 0; s < fi_from_.size(); ++s) {
    const PinId from = fi_from_[s];
    const timing::ArcId arc = fi_arc_[s];
    INSTA_DCHECK(graph_->level_of(from) <
                     graph_->level_of(graph_->arc(arc).to),
                 "forward_from: fanin arc does not climb levels");
  }
#endif
  for (std::size_t l = std::min(first_level, num_levels); l < num_levels; ++l) {
    INSTA_TRACE_SCOPE("engine.level", static_cast<std::int64_t>(l));
    em.levels.inc();
    const std::size_t lo = static_cast<std::size_t>(level_start_[l]);
    const std::size_t hi = static_cast<std::size_t>(level_start_[l + 1]);
    // One traversal amortizes across corners: each pin's CSR walk stays in
    // cache while all C corner planes merge through it.
    auto run = [&](std::size_t a, std::size_t b) {
      ForwardCounters fc;
      for (std::size_t i = a; i < b; ++i) {
        const PinId pin = level_pins_[i];
        for (CornerId c = 0; c < C; ++c) {
          process_pin(pin, c, fc);
          if (options_.enable_hold) process_pin_early(pin, c, fc);
        }
      }
      em.pins.add(fc.pins);
      em.arcs.add(fc.arcs);
      em.merges.add(fc.merges);
      em.prunes.add(fc.prunes);
    };
    if (options_.parallel && hi - lo >= threshold) {
      pool.parallel_for_chunks(lo, hi, run, grain);
    } else {
      run(lo, hi);
    }
  }
  const std::size_t num_eps = ep_pin_.size();
  INSTA_TRACE_SCOPE("engine.endpoints",
                    static_cast<std::int64_t>(num_eps));
  auto eval = [&](std::size_t a, std::size_t b) {
    std::uint64_t lookups = 0;
    for (std::size_t e = a; e < b; ++e) {
      for (CornerId c = 0; c < C; ++c) {
        lookups += evaluate_endpoint(static_cast<EndpointId>(e), c);
        if (options_.enable_hold) {
          lookups += evaluate_endpoint_hold(static_cast<EndpointId>(e), c);
        }
      }
    }
    em.endpoints.add((b - a) * C_);
    em.cppr_lookups.add(lookups);
  };
  if (options_.parallel && num_eps >= threshold) {
    pool.parallel_for_chunks(0, num_eps, eval,
                             static_cast<std::size_t>(options_.endpoint_grain));
  } else {
    eval(0, num_eps);
  }

  // Everything is now fresh: drop any queued frontier state in every corner
  // and rebuild the delta-maintained aggregates from scratch, so a full
  // pass always resets accumulated floating-point drift exactly.
  for (CornerId c = 0; c < C; ++c) {
    const std::size_t poff = pin_off(c);
    for (std::size_t l = 0; l < num_levels; ++l) {
      std::vector<PinId>& fr =
          frontier_[static_cast<std::size_t>(c) * num_levels + l];
      for (const PinId pin : fr) {
        dirty_pin_[poff + static_cast<std::size_t>(pin)] = 0;
      }
      fr.clear();
    }
    dirty_eps_[static_cast<std::size_t>(c)].clear();
  }
  dirty_level_.assign(C_, std::numeric_limits<std::size_t>::max());
  full_dirty_ = false;
  // A dense sweep rewrites every Top-K store: no backward weight survives.
  invalidate_weights();
  recompute_aggregates();
  last_pass_ = SparseStats{};
  last_pass_.sparse = false;
  last_pass_.levels_touched =
      (num_levels - std::min(first_level, num_levels)) * C_;
  last_pass_.frontier_pins = level_pins_.size() * C_;
  last_pass_.endpoints_evaluated = num_eps * C_;
}

void Engine::run_forward_sparse() {
  EngineMetrics& em = engine_metrics();
  em.incremental_passes.inc();
  last_pass_ = SparseStats{};
  last_pass_.sparse = true;
  // Corners run back-to-back over fully independent frontier state: each
  // corner's walk is then exactly the operation sequence of an independent
  // single-corner engine, which keeps the order-sensitive double-precision
  // TNS delta folds bit-identical to C separate engines. The thread-local
  // scratch and changed_flags_ are safely shared because corners are
  // serial with respect to each other.
  for (CornerId c = 0; c < static_cast<CornerId>(C_); ++c) {
    run_forward_sparse_corner(c);
  }
}

void Engine::run_forward_sparse_corner(CornerId corner) {
  INSTA_TRACE_SCOPE("engine.forward_sparse",
                    static_cast<std::int64_t>(corner));
  EngineMetrics& em = engine_metrics();
  auto& pool = util::ThreadPool::global();
  const std::size_t num_levels = level_start_.size() - 1;
  const auto threshold = static_cast<std::size_t>(options_.parallel_threshold);
  const auto grain = static_cast<std::size_t>(options_.parallel_grain);
  const std::size_t cc = static_cast<std::size_t>(corner);
  const std::size_t poff = pin_off(corner);
  const std::size_t eoff = ep_off(corner);
  std::vector<EndpointId>& deps = dirty_eps_[cc];
  deps.clear();

  for (std::size_t l = std::min(dirty_level_[cc], num_levels); l < num_levels;
       ++l) {
    std::vector<PinId>& fr = frontier_[cc * num_levels + l];
    if (fr.empty()) continue;
    INSTA_TRACE_SCOPE("engine.sparse_level",
                      static_cast<std::int64_t>(fr.size()));
    em.levels.inc();
    ++last_pass_.levels_touched;

    // Phase 1 (parallel): re-merge every dirty pin of this level into
    // thread-local scratch, committing only changed stores. Each chunk
    // writes a disjoint changed_flags_ range; no shared mutable state.
    changed_flags_.assign(fr.size(), 0);
    auto run = [&](std::size_t a, std::size_t b) {
      ForwardCounters fc;
      for (std::size_t i = a; i < b; ++i) {
        changed_flags_[i] = reprocess_pin_sparse(fr[i], corner, fc) ? 1 : 0;
      }
      em.pins.add(fc.pins);
      em.arcs.add(fc.arcs);
      em.merges.add(fc.merges);
      em.prunes.add(fc.prunes);
    };
    if (options_.parallel && fr.size() >= threshold) {
      pool.parallel_for_chunks(std::size_t{0}, fr.size(), run, grain);
    } else {
      run(0, fr.size());
    }

    // Phase 2 (serial scatter): a changed pin dirties its fanout (always at
    // strictly deeper levels) and queues its endpoint; an unchanged pin
    // terminates the ripple here. Serial keeps the frontier order
    // deterministic and the dirty flags race-free.
    std::uint64_t early = 0;
    for (std::size_t i = 0; i < fr.size(); ++i) {
      const auto p = static_cast<std::size_t>(fr[i]);
      dirty_pin_[poff + p] = 0;
      // Every frontier pin's backward weights are suspect: it was queued
      // either by an arc annotation (its fanin delays changed) or by a
      // parent whose Top-K store changed (its candidate inputs changed).
      mark_weights_stale(fr[i], corner);
      if (changed_flags_[i] == 0) {
        ++early;
        continue;
      }
      if (ep_of_pin_[p] >= 0) {
        deps.push_back(static_cast<EndpointId>(ep_of_pin_[p]));
      }
      const std::int32_t os = fo_start_[p];
      const std::int32_t oe = fo_start_[p + 1];
      for (std::int32_t o = os; o < oe; ++o) {
        const PinId child = fo_to_[static_cast<std::size_t>(o)];
        if (dirty_pin_[poff + static_cast<std::size_t>(child)] != 0) continue;
        mark_dirty(child, graph_->level_of(child), corner);
      }
    }
    last_pass_.frontier_pins += fr.size();
    last_pass_.early_terminations += early;
    em.frontier_pins.add(fr.size());
    em.early_terminations.add(early);
    fr.clear();
  }
  dirty_level_[cc] = std::numeric_limits<std::size_t>::max();

  // Phase 3: delta endpoint evaluation — only the endpoints this corner's
  // frontier actually reached. Old slacks are snapshotted so the change can
  // be folded into the corner's TNS/WNS caches.
  const std::size_t nd = deps.size();
  const std::size_t num_eps = ep_pin_.size();
  INSTA_TRACE_SCOPE("engine.sparse_endpoints",
                    static_cast<std::int64_t>(nd));
  if (nd != 0) {
    old_slack_scratch_.resize(nd);
    if (options_.enable_hold) old_hold_scratch_.resize(nd);
    for (std::size_t i = 0; i < nd; ++i) {
      const auto e = static_cast<std::size_t>(deps[i]);
      old_slack_scratch_[i] = slack_[eoff + e];
      if (options_.enable_hold) old_hold_scratch_[i] = hold_slack_[eoff + e];
    }
    auto eval = [&](std::size_t a, std::size_t b) {
      std::uint64_t lookups = 0;
      for (std::size_t i = a; i < b; ++i) {
        lookups += evaluate_endpoint(deps[i], corner);
        if (options_.enable_hold) {
          lookups += evaluate_endpoint_hold(deps[i], corner);
        }
      }
      em.endpoints.add(b - a);
      em.cppr_lookups.add(lookups);
    };
    if (options_.parallel && nd >= threshold) {
      pool.parallel_for_chunks(
          std::size_t{0}, nd, eval,
          static_cast<std::size_t>(options_.endpoint_grain));
    } else {
      eval(0, nd);
    }
    for (std::size_t i = 0; i < nd; ++i) {
      const auto e = static_cast<std::size_t>(deps[i]);
      apply_setup_delta(corner, old_slack_scratch_[i], slack_[eoff + e]);
      if (options_.enable_hold) {
        apply_hold_delta(corner, old_hold_scratch_[i], hold_slack_[eoff + e]);
      }
    }
  }
  deps.clear();
  last_pass_.endpoints_evaluated += nd;
  last_pass_.endpoints_skipped += num_eps - nd;
  em.endpoints_skipped.add(num_eps - nd);
}

void Engine::run_forward() {
  forward_from(0);
  ++generation_;
}

void Engine::run_forward_incremental() {
  if (full_dirty_) {
    forward_from(0);
  } else {
    run_forward_sparse();
  }
  ++generation_;
}

float Engine::credit(std::int32_t a, std::int32_t b) const {
  if (a < 0 || b < 0) return 0.0f;
  while (ck_depth_[static_cast<std::size_t>(a)] >
         ck_depth_[static_cast<std::size_t>(b)]) {
    a = ck_parent_[static_cast<std::size_t>(a)];
  }
  while (ck_depth_[static_cast<std::size_t>(b)] >
         ck_depth_[static_cast<std::size_t>(a)]) {
    b = ck_parent_[static_cast<std::size_t>(b)];
  }
  while (a != b) {
    a = ck_parent_[static_cast<std::size_t>(a)];
    b = ck_parent_[static_cast<std::size_t>(b)];
    // Nodes of distinct clock trees climb past their roots without meeting:
    // no common path, zero credit (matches ClockAnalysis::credit).
    if (a < 0 || b < 0) return 0.0f;
  }
  return 2.0f * nsigma_ * std::sqrt(ck_sig2_[static_cast<std::size_t>(a)]);
}

std::uint64_t Engine::evaluate_endpoint(EndpointId ep, CornerId corner) {
  const SetupEval ev =
      evaluate_endpoint_values(LiveValues(*this, corner), ep);
  const std::size_t e = ep_off(corner) + static_cast<std::size_t>(ep);
  slack_[e] = ev.slack;
  ep_worst_rf_[e] = ev.worst_rf;
  return ev.lookups;
}

std::uint64_t Engine::evaluate_endpoint_hold(EndpointId ep, CornerId corner) {
  const HoldEval ev =
      evaluate_endpoint_hold_values(LiveValues(*this, corner), ep);
  hold_slack_[ep_off(corner) + static_cast<std::size_t>(ep)] = ev.slack;
  return ev.lookups;
}

namespace {
/// Scans one corner's slack plane into (worst, any) — shared by the lazy
/// wns/whs rebuilds and recompute_aggregates.
std::pair<float, bool> worst_of(std::span<const float> slacks) {
  float w = 0.0f;
  bool any = false;
  for (const float s : slacks) {
    if (!std::isfinite(s)) continue;
    if (!any || s < w) {
      w = s;
      any = true;
    }
  }
  return {w, any};
}
}  // namespace

void Engine::recompute_aggregates() {
  const std::size_t num_eps = ep_pin_.size();
  tns_cache_.assign(C_, 0.0);
  nviol_cache_.assign(C_, 0);
  wns_cache_.assign(C_, 0.0f);
  wns_any_.assign(C_, 0);
  wns_valid_.assign(C_, 1);
  ths_cache_.assign(C_, 0.0);
  nhold_viol_cache_.assign(C_, 0);
  whs_cache_.assign(C_, 0.0f);
  whs_any_.assign(C_, 0);
  whs_valid_.assign(C_, 1);
  for (std::size_t c = 0; c < C_; ++c) {
    const std::size_t eoff = ep_off(static_cast<CornerId>(c));
    for (std::size_t e = 0; e < num_eps; ++e) {
      const float s = slack_[eoff + e];
      if (std::isfinite(s) && s < 0.0f) {
        tns_cache_[c] += static_cast<double>(s);
        ++nviol_cache_[c];
      }
    }
    const auto [w, any] =
        worst_of(std::span<const float>(slack_.data() + eoff, num_eps));
    wns_cache_[c] = w;
    wns_any_[c] = any ? 1 : 0;
    if (!hold_slack_.empty()) {
      for (std::size_t e = 0; e < num_eps; ++e) {
        const float s = hold_slack_[eoff + e];
        if (std::isfinite(s) && s < 0.0f) {
          ths_cache_[c] += static_cast<double>(s);
          ++nhold_viol_cache_[c];
        }
      }
      const auto [hw, hany] = worst_of(
          std::span<const float>(hold_slack_.data() + eoff, num_eps));
      whs_cache_[c] = hw;
      whs_any_[c] = hany ? 1 : 0;
    }
  }
}

void Engine::apply_setup_delta(CornerId corner, float oldv, float newv) {
  if (oldv == newv) return;
  const auto c = static_cast<std::size_t>(corner);
  if (std::isfinite(oldv) && oldv < 0.0f) {
    tns_cache_[c] -= static_cast<double>(oldv);
    --nviol_cache_[c];
  }
  if (std::isfinite(newv) && newv < 0.0f) {
    tns_cache_[c] += static_cast<double>(newv);
    ++nviol_cache_[c];
  }
  if (wns_valid_[c] == 0) return;
  if (std::isfinite(newv) && (wns_any_[c] == 0 || newv <= wns_cache_[c])) {
    wns_cache_[c] = newv;
    wns_any_[c] = 1;
  } else if (wns_any_[c] != 0 && std::isfinite(oldv) &&
             oldv <= wns_cache_[c]) {
    // The cached minimum may have just improved; rebuild lazily on read.
    wns_valid_[c] = 0;
  }
}

void Engine::apply_hold_delta(CornerId corner, float oldv, float newv) {
  if (oldv == newv) return;
  const auto c = static_cast<std::size_t>(corner);
  if (std::isfinite(oldv) && oldv < 0.0f) {
    ths_cache_[c] -= static_cast<double>(oldv);
    --nhold_viol_cache_[c];
  }
  if (std::isfinite(newv) && newv < 0.0f) {
    ths_cache_[c] += static_cast<double>(newv);
    ++nhold_viol_cache_[c];
  }
  if (whs_valid_[c] == 0) return;
  if (std::isfinite(newv) && (whs_any_[c] == 0 || newv <= whs_cache_[c])) {
    whs_cache_[c] = newv;
    whs_any_[c] = 1;
  } else if (whs_any_[c] != 0 && std::isfinite(oldv) &&
             oldv <= whs_cache_[c]) {
    whs_valid_[c] = 0;
  }
}

double Engine::ths(CornerId corner) const {
  return ths_cache_[static_cast<std::size_t>(corner)];
}

double Engine::whs(CornerId corner) const {
  const auto c = static_cast<std::size_t>(corner);
  if (whs_valid_[c] == 0) {
    const auto [w, any] = worst_of(std::span<const float>(
        hold_slack_.data() + ep_off(corner), ep_pin_.size()));
    whs_cache_[c] = w;
    whs_any_[c] = any ? 1 : 0;
    whs_valid_[c] = 1;
  }
  return whs_any_[c] != 0 ? static_cast<double>(whs_cache_[c]) : 0.0;
}

int Engine::num_hold_violations(CornerId corner) const {
  return nhold_viol_cache_[static_cast<std::size_t>(corner)];
}

double Engine::tns(CornerId corner) const {
  return tns_cache_[static_cast<std::size_t>(corner)];
}

double Engine::wns(CornerId corner) const {
  const auto c = static_cast<std::size_t>(corner);
  if (wns_valid_[c] == 0) {
    const auto [w, any] = worst_of(std::span<const float>(
        slack_.data() + ep_off(corner), ep_pin_.size()));
    wns_cache_[c] = w;
    wns_any_[c] = any ? 1 : 0;
    wns_valid_[c] = 1;
  }
  return wns_any_[c] != 0 ? static_cast<double>(wns_cache_[c]) : 0.0;
}

int Engine::num_violations(CornerId corner) const {
  return nviol_cache_[static_cast<std::size_t>(corner)];
}

SlackSummary Engine::summary(Mode mode, CornerId corner) const {
  check(corner >= 0 && static_cast<std::size_t>(corner) < C_,
        "Engine::summary: corner id " + std::to_string(corner) +
            " out of range [0, " + std::to_string(C_) + ")");
  if (mode == Mode::kSetup) {
    return SlackSummary{tns(corner), wns(corner), num_violations(corner)};
  }
  check(options_.enable_hold,
        "Engine::summary(Mode::kHold): engine was built without enable_hold");
  return SlackSummary{ths(corner), whs(corner), num_hold_violations(corner)};
}

SlackSummary Engine::merged_summary(Mode mode) const {
  if (mode == Mode::kHold) {
    check(options_.enable_hold,
          "Engine::merged_summary(Mode::kHold): engine was built without "
          "enable_hold");
  }
  std::uint64_t& cached_gen =
      mode == Mode::kSetup ? merged_setup_gen_ : merged_hold_gen_;
  SlackSummary& cached =
      mode == Mode::kSetup ? merged_setup_cache_ : merged_hold_cache_;
  if (cached_gen == generation_) return cached;
  if (C_ == 1) {
    cached = summary(mode, 0);
    cached_gen = generation_;
    return cached;
  }
  const float* base =
      mode == Mode::kSetup ? slack_.data() : hold_slack_.data();
  const std::size_t num_eps = ep_pin_.size();
  double tns = 0.0;
  float worst = 0.0f;
  bool any = false;
  int violations = 0;
  // Deterministic endpoint-major scan: the merged slack of an endpoint is
  // its worst finite slack over every corner (a corner where the endpoint
  // is unconstrained contributes nothing).
  for (std::size_t e = 0; e < num_eps; ++e) {
    float m = kInf;
    bool finite = false;
    for (std::size_t c = 0; c < C_; ++c) {
      const float s = base[c * num_eps + e];
      if (!std::isfinite(s)) continue;
      if (!finite || s < m) m = s;
      finite = true;
    }
    if (!finite) continue;
    if (m < 0.0f) {
      tns += static_cast<double>(m);
      ++violations;
    }
    if (!any || m < worst) {
      worst = m;
      any = true;
    }
  }
  cached = SlackSummary{tns, any ? static_cast<double>(worst) : 0.0,
                        violations};
  cached_gen = generation_;
  return cached;
}

void Engine::compute_weights_pin(std::size_t p, float tau, CornerId corner) {
  const std::int32_t fs = fi_start_[p];
  const std::int32_t fe = fi_start_[p + 1];
  if (fs == fe) return;
  const std::int32_t n = fe - fs;
  const std::size_t soff = slot_off(corner);
  for (int rf = 0; rf < 2; ++rf) {
    const auto rfi = static_cast<std::size_t>(rf);
    const float* cand = bw_cand_[rfi].data() + soff + fs;
    float* w = w_[rfi].data() + soff + fs;
    if (fast_math_) {
      softmax_fast_avx2(cand, n, 1.0f / tau, w);
      continue;
    }
    // Default mode: scalar libm exp and strictly sequential denominator in
    // slot order — byte-identical weights under both kernel flavors (the
    // candidates themselves are bit-identical, see topk_simd.hpp). Empty
    // parents carry cand = -inf, so exp contributes exactly +0.0f to the
    // sum and the stored weight, matching a zero-filled skip.
    float m = -kInf;
    for (std::int32_t i = 0; i < n; ++i) m = std::max(m, cand[i]);
    if (!std::isfinite(m)) {
      std::fill(w, w + n, 0.0f);
      continue;
    }
    float denom = 0.0f;
    for (std::int32_t i = 0; i < n; ++i) {
      const float e = std::exp((cand[i] - m) / tau);
      w[i] = e;
      denom += e;
    }
    if (denom <= 0.0f) continue;
    const float inv = 1.0f / denom;
    for (std::int32_t i = 0; i < n; ++i) w[i] *= inv;
  }
}

void Engine::mark_weights_stale(PinId pin, CornerId corner) {
  if (!w_tracking_) return;
  const std::size_t p = pin_off(corner) + static_cast<std::size_t>(pin);
  if (w_stale_[p] != 0) return;
  w_stale_[p] = 1;
  w_stale_pins_[static_cast<std::size_t>(corner)].push_back(pin);
}

void Engine::invalidate_weights() {
  w_tracking_ = false;
  for (std::size_t c = 0; c < C_; ++c) {
    const std::size_t poff = pin_off(static_cast<CornerId>(c));
    for (const PinId pin : w_stale_pins_[c]) {
      w_stale_[poff + static_cast<std::size_t>(pin)] = 0;
    }
    w_stale_pins_[c].clear();
  }
}

void Engine::run_backward(GradientMetric metric) {
  INSTA_TRACE_SCOPE("engine.backward");
  engine_metrics().backward_passes.inc();
  auto& pool = util::ThreadPool::global();
  std::fill(pin_grad_.begin(), pin_grad_.end(), 0.0f);
  std::fill(slot_grad_.begin(), slot_grad_.end(), 0.0f);
  std::fill(arc_grad_.begin(), arc_grad_.end(), 0.0f);
  const float tau = std::max(options_.tau, 1e-4f);
  const auto slots = static_cast<std::int32_t>(num_slots_);
  const auto C = static_cast<CornerId>(C_);
  const std::size_t num_eps = ep_pin_.size();

  // Phase 1: Eq. 6 softmax weights of every merge in every corner, from the
  // parents' top-1 arrivals. Weights depend only on parent top-1 entries
  // and fanin arc delays, both of which each corner's sparse-forward
  // frontier tracks — so after an incremental forward pass only that
  // corner's frontier pins' weights are recomputed and clean cones keep
  // their previous (identical) bytes. A pending annotation (timing not
  // clean) falls back to full recompute: its frontier has not run yet, so
  // the stale sets are not trustworthy.
  const bool reuse = w_tracking_ && timing_clean();
  last_backward_ = BackwardStats{};
  {
    INSTA_TRACE_SCOPE("engine.backward.weights");
    if (!reuse) {
      // Vectorized candidate pass over each corner's whole slot plane, then
      // per-pin softmax (each pin owns its fanin slot range; fully
      // parallel). The gather table slot_ci_ is corner-relative; the base
      // pointers carry the corner offsets.
      for (CornerId c = 0; c < C; ++c) {
        const std::size_t soff = slot_off(c);
        for (const int rf : {0, 1}) {
          const auto rfi = static_cast<std::size_t>(rf);
          backward_cand(simd_avx2_, tk_mu_.data() + tk_off(c),
                        tk_sig_.data() + tk_off(c),
                        tk_cnt_.data() + cnt_off(c), slot_ci_[rfi].data(),
                        static_cast<std::int32_t>(tk_stride_),
                        amu_[rfi].data() + soff, asig_[rfi].data() + soff,
                        slots, nsigma_, bw_cand_[rfi].data() + soff);
        }
        auto weights = [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            compute_weights_pin(static_cast<std::size_t>(level_pins_[i]), tau,
                                c);
          }
        };
        if (options_.parallel) {
          pool.parallel_for_chunks(0, level_pins_.size(), weights, 512);
        } else {
          weights(0, level_pins_.size());
        }
      }
      last_backward_.weight_pins_recomputed = level_pins_.size() * C_;
      for (std::size_t c = 0; c < C_; ++c) {
        const std::size_t poff = pin_off(static_cast<CornerId>(c));
        for (const PinId pin : w_stale_pins_[c]) {
          w_stale_[poff + static_cast<std::size_t>(pin)] = 0;
        }
        w_stale_pins_[c].clear();
      }
      w_tracking_ = true;
    } else {
      for (CornerId c = 0; c < C; ++c) {
        const std::size_t cc = static_cast<std::size_t>(c);
        const std::size_t soff = slot_off(c);
        std::vector<PinId>& stale = w_stale_pins_[cc];
        auto sparse_weights = [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const auto p = static_cast<std::size_t>(stale[i]);
            const std::int32_t fs = fi_start_[p];
            const std::int32_t fe = fi_start_[p + 1];
            if (fs != fe) {
              for (const int rf : {0, 1}) {
                const auto rfi = static_cast<std::size_t>(rf);
                backward_cand(simd_avx2_, tk_mu_.data() + tk_off(c),
                              tk_sig_.data() + tk_off(c),
                              tk_cnt_.data() + cnt_off(c),
                              slot_ci_[rfi].data() + fs,
                              static_cast<std::int32_t>(tk_stride_),
                              amu_[rfi].data() + soff + fs,
                              asig_[rfi].data() + soff + fs, fe - fs, nsigma_,
                              bw_cand_[rfi].data() + soff + fs);
              }
              compute_weights_pin(p, tau, c);
            }
          }
        };
        const std::size_t ns = stale.size();
        if (options_.parallel &&
            ns >= static_cast<std::size_t>(options_.parallel_threshold)) {
          pool.parallel_for_chunks(std::size_t{0}, ns, sparse_weights,
                                   static_cast<std::size_t>(
                                       options_.parallel_grain));
        } else {
          sparse_weights(0, ns);
        }
        last_backward_.weight_pins_recomputed += ns;
        last_backward_.weight_pins_reused += level_pins_.size() - ns;
        const std::size_t poff = pin_off(c);
        for (const PinId pin : stale) {
          w_stale_[poff + static_cast<std::size_t>(pin)] = 0;
        }
        stale.clear();
      }
      last_backward_.weights_reused = true;
    }
    EngineMetrics& em = engine_metrics();
    em.bw_weight_pins_recomputed.add(last_backward_.weight_pins_recomputed);
    em.bw_weight_pins_reused.add(last_backward_.weight_pins_reused);
  }

  for (CornerId c = 0; c < C; ++c) {
    const std::size_t eoff = ep_off(c);
    const std::size_t poff2 = pin_off(c) * 2;
    const std::size_t soff = slot_off(c);

    // Phase 2: endpoint seeds of d(-metric_c)/d(arrival) from this corner's
    // slack plane. Each corner's kWns softmin is over its own slacks.
    if (metric == GradientMetric::kTns) {
      for (std::size_t e = 0; e < num_eps; ++e) {
        const float s = slack_[eoff + e];
        if (!std::isfinite(s) || s >= 0.0f) continue;
        pin_grad_[poff2 + static_cast<std::size_t>(ep_pin_[e]) * 2 +
                  ep_worst_rf_[eoff + e]] += 1.0f;
      }
    } else {
      float smin = 0.0f;
      bool any = false;
      for (std::size_t e = 0; e < num_eps; ++e) {
        const float s = slack_[eoff + e];
        if (std::isfinite(s) && s < 0.0f && (!any || s < smin)) {
          smin = s;
          any = true;
        }
      }
      if (any) {
        const float wtau = std::max(options_.wns_tau, 1e-4f);
        double denom = 0.0;
        for (std::size_t e = 0; e < num_eps; ++e) {
          const float s = slack_[eoff + e];
          if (std::isfinite(s) && s < 0.0f) {
            denom += std::exp(static_cast<double>((smin - s) / wtau));
          }
        }
        for (std::size_t e = 0; e < num_eps; ++e) {
          const float s = slack_[eoff + e];
          if (!std::isfinite(s) || s >= 0.0f) continue;
          const float seed = static_cast<float>(
              std::exp(static_cast<double>((smin - s) / wtau)) / denom);
          pin_grad_[poff2 + static_cast<std::size_t>(ep_pin_[e]) * 2 +
                    ep_worst_rf_[eoff + e]] += seed;
        }
      }
    }

    // Phase 3: reverse level-synchronous pull. Each pin gathers the
    // weighted gradients of its fanout (already-final deeper levels) into
    // itself and into the fanout arcs it owns.
    INSTA_TRACE_SCOPE("engine.backward.pull");
    const std::size_t num_levels = level_start_.size() - 1;
    for (std::size_t l = num_levels; l-- > 0;) {
      const std::size_t lo = static_cast<std::size_t>(level_start_[l]);
      const std::size_t hi = static_cast<std::size_t>(level_start_[l + 1]);
      auto pull = [&](std::size_t a, std::size_t b) {
        for (std::size_t i = a; i < b; ++i) {
          const auto p = static_cast<std::size_t>(level_pins_[i]);
          const std::int32_t os = fo_start_[p];
          const std::int32_t oe = fo_start_[p + 1];
          for (std::int32_t o = os; o < oe; ++o) {
            const auto slot = static_cast<std::size_t>(fo_slot_[o]);
            const auto to =
                static_cast<std::size_t>(fo_to_[static_cast<std::size_t>(o)]);
            for (int crf = 0; crf < 2; ++crf) {
              const float wv =
                  w_[static_cast<std::size_t>(crf)][soff + slot];
              if (wv == 0.0f) continue;
              const float g =
                  pin_grad_[poff2 + to * 2 + static_cast<std::size_t>(crf)];
              if (g == 0.0f) continue;
              const float contrib = wv * g;
              const int prf = crf ^ static_cast<int>(fi_neg_[slot]);
              pin_grad_[poff2 + p * 2 + static_cast<std::size_t>(prf)] +=
                  contrib;
              slot_grad_[soff + slot] += contrib;
            }
          }
        }
      };
      if (options_.parallel && hi - lo >= 512) {
        pool.parallel_for_chunks(lo, hi, pull, 256);
      } else {
        pull(lo, hi);
      }
    }

    // Phase 4: scatter slot gradients onto graph arc ids.
    const std::size_t aoff = arc_off(c);
    for (std::size_t s = 0; s < num_slots_; ++s) {
      arc_grad_[aoff + static_cast<std::size_t>(fi_arc_[s])] +=
          slot_grad_[soff + s];
    }
  }
}

float Engine::stage_gradient(netlist::CellId cell, CornerId corner) const {
  const std::size_t aoff = arc_off(corner);
  float g = 0.0f;
  const auto [cfirst, clast] = graph_->cell_arcs(cell);
  for (ArcId a = cfirst; a < clast; ++a) {
    g += arc_grad_[aoff + static_cast<std::size_t>(a)];
  }
  const netlist::LibCell& lc = graph_->design().libcell_of(cell);
  for (int i = 0; i < netlist::num_data_inputs(lc.func); ++i) {
    const PinId pin = graph_->design().input_pin(cell, i);
    for (const ArcId a : graph_->fanin(pin)) {
      g += arc_grad_[aoff + static_cast<std::size_t>(a)];
    }
  }
  return g;
}

std::vector<Engine::TopKEntry> Engine::arrivals(PinId pin, RiseFall rf,
                                                CornerId corner) const {
  const std::size_t base =
      tk_off(corner) + entry_base(pin, netlist::rf_index(rf));
  const std::int32_t cnt =
      tk_cnt_[cnt_off(corner) + cnt_index(pin, netlist::rf_index(rf))];
  std::vector<TopKEntry> out;
  out.reserve(static_cast<std::size_t>(cnt));
  for (std::int32_t k = 0; k < cnt; ++k) {
    TopKEntry e;
    e.arr = tk_arr_[base + static_cast<std::size_t>(k)];
    e.mu = tk_mu_[base + static_cast<std::size_t>(k)];
    e.sig = tk_sig_[base + static_cast<std::size_t>(k)];
    e.sp = tk_sp_[base + static_cast<std::size_t>(k)];
    out.push_back(e);
  }
  return out;
}

float Engine::worst_arrival(PinId pin, CornerId corner) const {
  float worst = -kInf;
  for (int rf = 0; rf < 2; ++rf) {
    if (tk_cnt_[cnt_off(corner) + cnt_index(pin, rf)] > 0) {
      worst = std::max(worst, tk_arr_[tk_off(corner) + entry_base(pin, rf)]);
    }
  }
  return worst;
}

std::size_t Engine::memory_bytes() const {
  std::size_t b = 0;
  b += tk_arr_.capacity() * sizeof(float) * 3;  // arr, mu, sig
  b += tk_sp_.capacity() * sizeof(std::int32_t);
  b += tk_cnt_.capacity() * sizeof(std::int32_t);
  b += tk2_arr_.capacity() * sizeof(float) * 3;
  b += tk2_sp_.capacity() * sizeof(std::int32_t);
  b += tk2_cnt_.capacity() * sizeof(std::int32_t);
  b += fi_from_.capacity() * sizeof(PinId);
  b += fi_neg_.capacity();
  b += fi_arc_.capacity() * sizeof(ArcId);
  b += (amu_[0].capacity() + amu_[1].capacity() + asig_[0].capacity() +
        asig_[1].capacity()) *
       sizeof(float);
  b += (fo_slot_.capacity() + fo_to_.capacity()) * sizeof(std::int32_t);
  b += (w_[0].capacity() + w_[1].capacity() + slot_grad_.capacity() +
        pin_grad_.capacity() + arc_grad_.capacity() + bw_cand_[0].capacity() +
        bw_cand_[1].capacity()) *
       sizeof(float);
  b += (fi_start_.capacity() + fo_start_.capacity() + slot_of_arc_.capacity() +
        sp_of_pin_.capacity() + launch_sp_of_arc_.capacity() +
        ep_of_pin_.capacity() + tk_pos_.capacity() + slot_ci_[0].capacity() +
        slot_ci_[1].capacity()) *
       sizeof(std::int32_t);
  b += (slack_.capacity() + hold_slack_.capacity()) * sizeof(float);
  b += ep_worst_rf_.capacity();
  b += dirty_pin_.capacity() + changed_flags_.capacity() + w_stale_.capacity();
  for (const auto& ws : w_stale_pins_) b += ws.capacity() * sizeof(PinId);
  for (const auto& fr : frontier_) b += fr.capacity() * sizeof(PinId);
  for (const auto& de : dirty_eps_) b += de.capacity() * sizeof(EndpointId);
  return b;
}

}  // namespace insta::core
