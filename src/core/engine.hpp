#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/topk.hpp"
#include "core/topk_simd.hpp"
#include "ref/golden_sta.hpp"
#include "timing/constraints.hpp"
#include "timing/graph.hpp"
#include "timing/types.hpp"
#include "util/simd.hpp"

namespace insta::analysis {
class LintReport;  // analysis/diagnostics.hpp
}  // namespace insta::analysis

namespace insta::core {

class ScenarioBatch;  // core/scenario_batch.hpp

/// Index of one analysis corner within an engine. Valid ids are
/// [0, num_corners()); kAllCorners broadcasts an annotation to every corner.
using CornerId = std::int32_t;
inline constexpr CornerId kAllCorners = -1;

/// One named analysis corner: a (liberty, POCV) scale set applied to every
/// data-arc delay and startpoint launch arrival cloned from the reference or
/// re-annotated later. delay_scale multiplies arc/launch means, sigma_scale
/// multiplies POCV sigmas; clock-network arrivals, CPPR tables, and
/// endpoint required times are shared across corners (one clock tree, many
/// data-path corners). A scale of exactly 1.0f is a byte-exact passthrough,
/// so the default corner reproduces the single-corner engine bit for bit.
struct CornerSpec {
  std::string name = "default";
  float delay_scale = 1.0f;
  float sigma_scale = 1.0f;
};

/// Configuration of the INSTA engine.
struct EngineOptions {
  /// Number of unique-startpoint arrivals kept per pin/transition.
  /// K=1 disables CPPR handling (the left plot of Fig. 6); K >= the number
  /// of distinct startpoints converging anywhere makes propagation exact.
  int top_k = 32;
  /// LSE temperature (ps) of the backward softmax of Eq. 6. Smaller values
  /// approach the hard max; larger values spread gradient across
  /// sub-critical paths.
  float tau = 10.0f;
  /// Soft-min temperature (ps) across endpoints used for WNS gradient seeds.
  float wns_tau = 10.0f;
  /// Kernel flavor of the merge/backward hot loops. kAuto picks AVX2 when
  /// compiled in and supported (overridable with INSTA_SIMD=off in the
  /// environment); kScalar pins the reference flavor; kAvx2 is a hard
  /// requirement that fails construction when unavailable. Both flavors
  /// are bit-identical in the default numeric mode.
  util::simd::SimdMode simd = util::simd::SimdMode::kAuto;
  /// Documented relative error bound of the fast-math backward softmax
  /// (vectorized polynomial exp + reassociated LSE denominator). 0 (the
  /// default) keeps the bit-identity mode: scalar libm exp, sequential
  /// sums, gradients byte-identical across kernel flavors. A positive
  /// value enables the fast path (AVX2 builds only) and states the maximum
  /// relative arc-gradient drift the caller accepts vs the default mode;
  /// the engine's kernels stay within 1e-3 (see DESIGN.md §14).
  float fast_math_tolerance = 0.0f;
  /// Level-parallel execution on the global thread pool.
  bool parallel = true;
  /// Minimum number of work items (level pins, frontier pins, endpoints)
  /// before a loop is offloaded to the thread pool; smaller loops run
  /// inline on the calling thread.
  int parallel_threshold = 512;
  /// Minimum chunk size handed to one worker in the per-level pin kernels.
  int parallel_grain = 128;
  /// Minimum chunk size for endpoint slack evaluation.
  int endpoint_grain = 256;
  /// Also propagate early (minimum) arrivals and evaluate hold checks.
  /// Doubles the Top-K storage. The reference engine must have been built
  /// with the matching GoldenOptions::enable_hold. Off by default: the
  /// paper's experiments are setup-only.
  bool enable_hold = false;
  /// The analysis corners to propagate. Empty (the default) means one
  /// implicit corner {"default", 1.0, 1.0}. All corners propagate in one
  /// level sweep over corner-major Top-K planes; each corner's result is
  /// bit-identical to an independent single-corner engine built with only
  /// that corner. Names must be unique and non-empty; scales finite > 0.
  std::vector<CornerSpec> corners;

  /// Returns one message per invalid field (empty when the options are
  /// usable). Engine's constructor rejects invalid options with the same
  /// messages, so callers that build options from external input (CLI
  /// flags, JSON) can report every problem at once instead of hitting the
  /// first constructor check.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// One annotate() call's payload as applied through a Transaction: the
/// targeted corner (kAllCorners for broadcast) and the caller's deltas in
/// the caller's order. Replaying the records of a committed transaction via
/// annotate(deltas, corner) + run_forward_incremental() on an engine in the
/// pre-transaction state reproduces the post-commit state bit for bit —
/// the unit the replication layer ships as a commit delta.
struct AppliedDeltas {
  CornerId corner = kAllCorners;
  std::vector<timing::ArcDelta> deltas;
};

/// A complete image of the mutable timing state of a clean engine — the
/// export/import unit behind the replication snapshot codec. Covers every
/// store that annotate()/forward passes mutate (delay planes, startpoint
/// arrivals, Top-K planes, slack planes) plus the delta-maintained
/// aggregate caches, which are copied bitwise because their
/// order-sensitive double folds drift from an exact recompute: a replica
/// recomputing them locally would not match the writer byte for byte.
/// Structural stores (graph CSR, CPPR tables, exceptions) are not
/// included: both sides build them deterministically from the same design,
/// and the shape/corner/required-time checks in import_state() reject a
/// mismatched design.
struct EngineState {
  std::uint64_t generation = 0;

  // Shape: must match the importing engine exactly.
  std::uint32_t num_corners = 0;
  std::uint64_t num_pins = 0;
  std::uint64_t num_slots = 0;
  std::uint64_t num_sps = 0;
  std::uint64_t num_eps = 0;
  std::uint64_t num_arcs = 0;
  std::int32_t top_k = 0;
  std::uint32_t tk_stride = 0;
  std::uint8_t enable_hold = 0;
  std::vector<CornerSpec> corners;

  // Mutable value planes (corner-major layouts identical to the engine's).
  std::array<std::vector<float>, 2> amu;
  std::array<std::vector<float>, 2> asig;
  std::array<std::vector<float>, 2> sp_mu;
  std::array<std::vector<float>, 2> sp_sig;
  std::vector<float> tk_arr, tk_mu, tk_sig;
  std::vector<std::int32_t> tk_sp, tk_cnt;
  std::vector<float> tk2_arr, tk2_mu, tk2_sig;
  std::vector<std::int32_t> tk2_sp, tk2_cnt;
  std::vector<float> slack, hold_slack;
  std::vector<std::uint8_t> ep_worst_rf;

  // Endpoint required-time attributes. Structural (never mutated), shipped
  // so import can verify byte-equality — the cheapest "same design, same
  // constraints" fingerprint.
  std::vector<float> ep_base_req, ep_hold_base;

  // Aggregate caches, bitwise (see struct comment).
  std::vector<double> tns;
  std::vector<int> nviol;
  std::vector<double> ths;
  std::vector<int> nhold_viol;
  std::vector<float> wns;
  std::vector<std::uint8_t> wns_any, wns_valid;
  std::vector<float> whs;
  std::vector<std::uint8_t> whs_any, whs_valid;
};

/// Global timing metric whose gradient run_backward computes.
enum class GradientMetric { kTns, kWns };

/// Analysis mode of a slack query: late/setup or early/hold.
enum class Mode : std::uint8_t { kSetup, kHold };

/// Aggregate slack metrics of one analysis mode. This is the unit of
/// reporting everywhere: Engine::summary(), ScenarioBatch results, the CLI
/// tables. Comparable with == (the engine's bit-identity guarantees make
/// exact comparison meaningful).
struct SlackSummary {
  double tns = 0.0;      ///< total negative slack, ps
  double wns = 0.0;      ///< worst negative slack, ps (0 if nothing violates)
  int violations = 0;    ///< endpoints with negative slack
  friend bool operator==(const SlackSummary&, const SlackSummary&) = default;
};

/// The INSTA engine: ultra-fast, differentiable, statistical timing
/// propagation over a timing-graph image cloned from a reference engine.
///
/// Construction performs the paper's one-time initialization (Figure 2):
/// it copies the levelized graph structure, per-arc delay distributions,
/// startpoint arrival attributes, endpoint required-time attributes, the
/// clock-tree CPPR tables, and the timing-exception table out of the golden
/// reference engine into flat float structure-of-arrays storage — the CPU
/// analogue of uploading initialization tensors to the GPU.
///
/// After initialization the engine is independent of the reference: it owns
/// forward Top-K statistical propagation (Algorithms 1 + 2) across every
/// configured corner, endpoint slack evaluation with CPPR credits,
/// incremental arc re-annotation, and the backward "timing gradient" pass
/// (Eq. 6).
///
/// MCMM: all value stores are corner-major (corner plane = one single-corner
/// engine image), so one graph traversal propagates C corners through the
/// same vectorized kernels. Per-corner queries take a CornerId; merged
/// (cross-corner worst-case) summaries come from merged_summary().
class Engine {
 public:
  /// One-time initialization from a golden reference engine on which
  /// update_full() has been run.
  explicit Engine(const ref::GoldenSta& reference, EngineOptions options = {});

  // ---- corners --------------------------------------------------------------

  /// Number of propagated corners (>= 1).
  [[nodiscard]] std::size_t num_corners() const { return C_; }

  /// The resolved corner list ([0] is the implicit default when
  /// EngineOptions::corners was empty).
  [[nodiscard]] std::span<const CornerSpec> corners() const { return corners_; }

  /// Id of a corner by name, or kAllCorners (-1) when unknown.
  [[nodiscard]] CornerId corner_id(std::string_view name) const;

  // ---- incremental re-annotation ------------------------------------------

  /// Overwrites the delay distributions of the given arcs (e.g. with
  /// estimate_eco output after a gate resize) in one corner, or broadcast
  /// to every corner (the default; each corner applies its own scale set).
  /// Launch-arc deltas update the corresponding startpoint's initial
  /// arrival. Cheap; call run_forward() afterwards to refresh timing. Arc
  /// and corner ids are range-checked even in Release (out-of-range would
  /// corrupt the flat stores); full structured validation is
  /// annotate_checked()'s job.
  void annotate(std::span<const timing::ArcDelta> deltas,
                CornerId corner = kAllCorners);

  /// Validating annotate for trust boundaries (CLI flags, JSON what-if
  /// input): runs check_deltas(), applies every clean delta, skips the
  /// erroneous ones, and returns the diagnostics. Prefer the raw
  /// annotate() inside optimization loops that generate their own deltas.
  analysis::LintReport annotate_checked(std::span<const timing::ArcDelta> deltas,
                                        CornerId corner = kAllCorners);

  /// Validates a delta-set without applying it. Errors (rule ids
  /// "delta-arc-range", "delta-clock-arc", "delta-bad-value",
  /// "corner-unknown") mark deltas annotate() would reject or corrupt on;
  /// duplicates within the span are reported as warnings
  /// ("delta-duplicate-arc") since annotate() applies them last-wins.
  /// Reuses the analysis diagnostic types so reports can be rendered and
  /// merged like linter output.
  [[nodiscard]] analysis::LintReport check_deltas(
      std::span<const timing::ArcDelta> deltas,
      CornerId corner = kAllCorners) const;

  /// Reads back the engine's current annotation of a data arc in one
  /// corner (used by optimization loops to snapshot state before a
  /// tentative annotate() so a rejected move can be rolled back exactly).
  /// The returned values are corner-local, i.e. with that corner's scale
  /// set already applied.
  [[nodiscard]] timing::ArcDelta read_annotation(timing::ArcId arc,
                                                 CornerId corner = 0) const;

  // ---- transactional editing ----------------------------------------------

  /// RAII speculative-edit scope: the first-class replacement for the
  /// checkpoint/annotate/restore dance. A Transaction records the raw
  /// pre-edit stores of every arc it touches in every corner (first touch
  /// wins), so rollback() restores delays, Top-K stores, endpoint slacks,
  /// and the delta-maintained TNS/WNS caches to their exact
  /// pre-transaction bytes — including launch arcs, whose startpoint fold
  /// does not round-trip through read_annotation()/annotate() exactly.
  ///
  ///   auto tx = engine.begin_edit();
  ///   tx.annotate(deltas);                  // broadcast to all corners
  ///   engine.run_forward_incremental();
  ///   if (engine.merged_summary(Mode::kSetup).tns >= floor) tx.commit();
  ///   else tx.rollback();   // also implied by ~Transaction
  ///
  /// One Transaction may be active per engine at a time; mutating the
  /// engine through anything other than the active Transaction's annotate()
  /// leaves those edits outside its undo log.
  class Transaction {
   public:
    Transaction(Transaction&& other) noexcept;
    Transaction(const Transaction&) = delete;
    Transaction& operator=(Transaction&&) = delete;
    Transaction& operator=(const Transaction&) = delete;
    /// Rolls back if neither commit() nor rollback() was called.
    ~Transaction();

    /// annotate() on the parent engine, snapshotting first-touched arcs
    /// (all corners, regardless of the targeted corner — rollback is then
    /// correct whatever mix of targeted and broadcast edits follows).
    void annotate(std::span<const timing::ArcDelta> deltas,
                  CornerId corner = kAllCorners);

    /// Keeps the edits; the transaction becomes inactive. Timing refresh
    /// (run_forward_incremental) stays the caller's responsibility, same
    /// as after a plain annotate().
    void commit();

    /// Every annotate() call made through this transaction, in call order
    /// with the caller's delta ordering preserved (replaying them on a
    /// pre-transaction twin is bit-identical — ordering matters because
    /// the TNS delta folds are float-order-sensitive). Survives commit()
    /// so the serve layer can capture a commit's replication record;
    /// cleared by rollback(), which erased the edits.
    [[nodiscard]] const std::vector<AppliedDeltas>& applied() const {
      return applied_;
    }

    /// Restores every touched arc's raw delay floats in every corner,
    /// re-propagates incrementally (bit-identical slack restoration), and
    /// restores the aggregate caches from the begin_edit() snapshot. The
    /// engine is timing-clean afterwards.
    void rollback();

    /// False once commit()/rollback() ran (or the transaction was moved).
    [[nodiscard]] bool active() const { return engine_ != nullptr; }

   private:
    friend class Engine;
    explicit Transaction(Engine& engine);

    /// Raw first-touch snapshot of one arc's delay storage across every
    /// corner: either a data arc's amu_/asig_ slots or a launch arc's
    /// folded startpoint floats. mu/sig are laid out [corner*2 + rf].
    struct Undo {
      timing::ArcId arc = timing::kNullArc;
      std::int32_t slot = -1;  ///< data-arc slot; -1 for launch arcs
      std::int32_t sp = -1;    ///< startpoint id for launch arcs
      netlist::PinId sink = netlist::kNullPin;  ///< rollback frontier seed
      std::vector<float> mu;
      std::vector<float> sig;
    };
    void record(std::span<const timing::ArcDelta> deltas);

    Engine* engine_ = nullptr;
    std::vector<Undo> undo_;
    std::vector<AppliedDeltas> applied_;
    // Per-corner aggregate-cache snapshot taken at begin_edit(); restored
    // verbatim on rollback (the slack stores themselves restore
    // bit-identically through the sparse pass, so the snapshot stays
    // consistent with them).
    std::vector<double> tns_;
    std::vector<int> nviol_;
    std::vector<double> ths_;
    std::vector<int> nhold_viol_;
    std::vector<float> wns_;
    std::vector<std::uint8_t> wns_any_;
    std::vector<std::uint8_t> wns_valid_;
    std::vector<float> whs_;
    std::vector<std::uint8_t> whs_any_;
    std::vector<std::uint8_t> whs_valid_;
  };

  /// Opens a Transaction. Requires clean timing (run a forward pass first)
  /// so the snapshot is consistent; throws if a Transaction is already
  /// active on this engine.
  [[nodiscard]] Transaction begin_edit();

  // ---- forward: Top-K statistical propagation -------------------------------

  /// Full-graph forward propagation: level-synchronous Top-K unique-
  /// startpoint arrival merging of every corner in one sweep, then
  /// endpoint slack evaluation.
  void run_forward();

  /// Frontier-sparse forward propagation: annotate() seeds a per-corner
  /// dirty-pin worklist; each level re-merges only its dirty pins, and a
  /// pin whose Top-K list is bit-identical after the re-merge does not
  /// dirty its fanout (value-change early termination), so ECO ripples die
  /// out instead of sweeping the whole cone. Only the endpoints actually
  /// reached by the frontier are re-evaluated, with TNS/WNS maintained by
  /// delta. Corners run back-to-back with fully independent frontier
  /// state, so every corner's operation order — and therefore every
  /// float — exactly matches an independent single-corner engine's.
  /// Results are bit-identical to run_forward(); falls back to a full pass
  /// on the first call after initialization.
  void run_forward_incremental();

  /// Work accounting of the most recent forward pass (full or sparse),
  /// summed over corners. Deterministic and independent of the telemetry
  /// build — used by the equivalence tests and the Fig. 7 bench.
  struct SparseStats {
    bool sparse = false;  ///< false when the pass ran (or fell back to) dense
    std::uint64_t levels_touched = 0;
    std::uint64_t frontier_pins = 0;       ///< pins re-merged
    std::uint64_t early_terminations = 0;  ///< re-merged pins left unchanged
    std::uint64_t endpoints_evaluated = 0;
    std::uint64_t endpoints_skipped = 0;
  };
  [[nodiscard]] const SparseStats& last_pass_stats() const {
    return last_pass_;
  }

  /// True when no annotation is pending in any corner (an incremental pass
  /// would be a no-op). Exposed for dirty-bookkeeping tests.
  [[nodiscard]] bool timing_clean() const {
    if (full_dirty_) return false;
    for (const std::size_t dl : dirty_level_) {
      if (dl != std::numeric_limits<std::size_t>::max()) return false;
    }
    return true;
  }

  /// Monotonic count of completed forward passes (full or sparse). Two
  /// reads of the engine's timing state made under the same generation with
  /// timing_clean() are guaranteed to describe the same committed timing;
  /// the serve layer uses it as the published-snapshot version.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  // ---- state export / import (replication) ----------------------------------

  /// Copies the complete mutable timing state (see EngineState) out of a
  /// clean engine. Requires timing_clean() and no active Transaction so
  /// the image is a committed generation, not a half-applied edit.
  [[nodiscard]] EngineState export_state() const;

  /// Overwrites this engine's mutable timing state with an exported image
  /// from an engine built on the same design with the same options.
  /// Validates every shape field, the corner list, and the endpoint
  /// required-time attributes (byte-equality) before touching anything,
  /// throwing util::CheckError on mismatch. After import the engine is
  /// timing-clean at state.generation and every accessor returns the
  /// exporting engine's bytes; backward-weight reuse and the
  /// generation-stamped merged_summary() caches are force-invalidated
  /// (the incoming generation number may collide with one this engine
  /// already cached under different state).
  void import_state(const EngineState& state);

  // ---- evaluation results ---------------------------------------------------

  /// Aggregate slack metrics of one analysis mode in one corner — the
  /// primary reporting accessor. The corner is an explicit parameter (the
  /// MCMM API migration point); use merged_summary() for the cross-corner
  /// worst-case view. Mode::kHold requires EngineOptions::enable_hold.
  [[nodiscard]] SlackSummary summary(Mode mode, CornerId corner) const;

  /// Cross-corner merged metrics: per endpoint, the worst slack over every
  /// corner; TNS/WNS/violations over those merged slacks. With one corner
  /// this is exactly summary(mode, 0). Computed by a deterministic
  /// endpoint-major scan and cached per generation.
  [[nodiscard]] SlackSummary merged_summary(Mode mode) const;

  /// Slack of one endpoint in one corner, ps (+infinity if unconstrained).
  [[nodiscard]] float endpoint_slack(timing::EndpointId ep,
                                     CornerId corner = 0) const {
    return slack_[ep_off(corner) + static_cast<std::size_t>(ep)];
  }

  /// One corner's endpoint slacks, indexed by endpoint id.
  [[nodiscard]] std::span<const float> endpoint_slacks(
      CornerId corner = 0) const {
    return {slack_.data() + ep_off(corner), ep_pin_.size()};
  }

  // Single-field per-corner aggregate reads. summary(Mode, CornerId) is the
  // preferred reporting call; these remain for hot loops that want one
  // field without settling the lazy WNS cache. The corner defaults to 0
  // (the first configured corner) for single-corner callers.

  /// Total negative slack of one corner, ps.
  [[nodiscard]] double tns(CornerId corner = 0) const;

  /// Worst negative slack of one corner, ps (0 if no endpoint violates).
  [[nodiscard]] double wns(CornerId corner = 0) const;

  /// Number of endpoints with negative slack in one corner.
  [[nodiscard]] int num_violations(CornerId corner = 0) const;

  // ---- hold (min-mode) results; valid when options.enable_hold -------------

  /// Hold slack of one endpoint in one corner, ps (+infinity if
  /// unconstrained).
  [[nodiscard]] float endpoint_hold_slack(timing::EndpointId ep,
                                          CornerId corner = 0) const {
    return hold_slack_[ep_off(corner) + static_cast<std::size_t>(ep)];
  }

  /// Total negative hold slack of one corner, ps.
  [[nodiscard]] double ths(CornerId corner = 0) const;

  /// Worst hold slack of one corner, ps (0 if nothing violates).
  [[nodiscard]] double whs(CornerId corner = 0) const;

  /// Number of endpoints with negative hold slack in one corner.
  [[nodiscard]] int num_hold_violations(CornerId corner = 0) const;

  // ---- backward: timing gradients -------------------------------------------

  /// Backpropagates the chosen metric from the endpoints to every arc in
  /// every corner, assigning each candidate path the softmax weight of
  /// Eq. 6. After the call, arc_gradient(a, c) holds d(-metric_c)/d(mu_a)
  /// >= 0: the arc's criticality in corner c, i.e. how much one ps of
  /// added delay on the arc would degrade that corner's TNS (or WNS).
  void run_backward(GradientMetric metric = GradientMetric::kTns);

  /// Work accounting of the most recent run_backward, summed over corners.
  /// The Eq. 6 softmax weights (phase 1, the exp-dominated cost of the
  /// pass) depend only on parent top-1 arrivals and arc delays, so after
  /// an incremental forward pass only the frontier pins' weights can have
  /// changed: the backward pass reuses the frontier-sparse machinery and
  /// recomputes weights for exactly those pins, skipping clean cones.
  /// Deterministic and independent of the telemetry build.
  struct BackwardStats {
    bool weights_reused = false;  ///< true when the sparse reuse path ran
    std::uint64_t weight_pins_recomputed = 0;
    std::uint64_t weight_pins_reused = 0;
  };
  [[nodiscard]] const BackwardStats& last_backward_stats() const {
    return last_backward_;
  }

  /// Gradient of one arc in one corner from the last run_backward (graph
  /// arc id).
  [[nodiscard]] float arc_gradient(timing::ArcId arc,
                                   CornerId corner = 0) const {
    return arc_grad_[arc_off(corner) + static_cast<std::size_t>(arc)];
  }

  /// One corner's arc gradients, indexed by graph arc id.
  [[nodiscard]] std::span<const float> arc_gradients(
      CornerId corner = 0) const {
    return {arc_grad_.data() + arc_off(corner), graph_->num_arcs()};
  }

  /// Stage gradient of a cell in one corner: the sum of its cell-arc
  /// gradients and its driving net-arc gradients (Section III-H's sizing
  /// stage metric).
  [[nodiscard]] float stage_gradient(netlist::CellId cell,
                                     CornerId corner = 0) const;

  // ---- introspection ---------------------------------------------------------

  /// One Top-K entry as stored in the engine.
  struct TopKEntry {
    float arr = 0.0f;
    float mu = 0.0f;
    float sig = 0.0f;
    std::int32_t sp = -1;
  };

  /// Current Top-K arrivals at a pin/transition in one corner, descending
  /// by arrival.
  [[nodiscard]] std::vector<TopKEntry> arrivals(netlist::PinId pin,
                                                netlist::RiseFall rf,
                                                CornerId corner = 0) const;

  /// The worst arrival corner-value at a pin over both transitions in one
  /// analysis corner (-infinity if nothing arrives).
  [[nodiscard]] float worst_arrival(netlist::PinId pin,
                                    CornerId corner = 0) const;

  /// Bytes held by the engine's flat arrays (the Table I memory column).
  [[nodiscard]] std::size_t memory_bytes() const;

  [[nodiscard]] const timing::TimingGraph& graph() const { return *graph_; }
  [[nodiscard]] const EngineOptions& options() const { return options_; }
  [[nodiscard]] std::size_t num_levels() const { return level_start_.size() - 1; }

 private:
  /// ScenarioBatch runs the engine's own kernels against copy-on-write
  /// overlays of the flat stores; it is a read-only friend of everything
  /// the forward pass reads.
  friend class ScenarioBatch;

  void clone_structure(const ref::GoldenSta& reference);
  void clone_delays(const ref::GoldenSta& reference);
  void clone_sp_ep_attributes(const ref::GoldenSta& reference);

  /// Corner-scale application with a byte-exact passthrough at 1.0f: the
  /// default corner must reproduce the pre-MCMM engine (and corner c of a
  /// multi-corner engine must reproduce an independent single-corner
  /// engine) bit for bit, so the no-scaling path performs the exact same
  /// double->float conversion as before, with no multiply.
  [[nodiscard]] static float scaled(double v, float scale) {
    const float f = static_cast<float>(v);
    return scale == 1.0f ? f : f * scale;
  }

  /// Per-chunk instrumentation accumulator: plain integers bumped inline in
  /// the merge kernels, flushed to the metrics registry once per chunk.
  struct ForwardCounters {
    std::uint64_t pins = 0;    ///< pins processed (per transition pass)
    std::uint64_t arcs = 0;    ///< fanin arcs traversed
    std::uint64_t merges = 0;  ///< Top-K insert attempts
    std::uint64_t prunes = 0;  ///< inserts rejected by the full-list filter
  };

  /// Value-access adapter of the shared kernels below, reading one
  /// corner's plane of the engine's live stores. ScenarioBatch supplies an
  /// overlay-first twin with the same interface; the kernels' instruction
  /// sequences are identical under both, which is what makes scenario
  /// results bit-identical to sequential passes. The corner offsets are
  /// resolved once at construction so the hot-loop reads stay one indexed
  /// load each.
  struct LiveValues {
    const Engine& e;
    std::size_t tkoff;    ///< corner offset into the Top-K entry planes
    std::size_t cntoff;   ///< corner offset into the count planes
    std::size_t slotoff;  ///< corner offset into amu_/asig_
    std::size_t spoff;    ///< corner offset into sp_mu_/sp_sig_
    LiveValues(const Engine& eng, CornerId corner)
        : e(eng),
          tkoff(eng.tk_off(corner)),
          cntoff(eng.cnt_off(corner)),
          slotoff(eng.slot_off(corner)),
          spoff(eng.sp_off(corner)) {}
    [[nodiscard]] TopKConstView parent(std::size_t pin, int rf,
                                       bool early) const {
      const auto& arr = early ? e.tk2_arr_ : e.tk_arr_;
      const auto& mu = early ? e.tk2_mu_ : e.tk_mu_;
      const auto& sig = early ? e.tk2_sig_ : e.tk_sig_;
      const auto& sp = early ? e.tk2_sp_ : e.tk_sp_;
      const auto& cnt = early ? e.tk2_cnt_ : e.tk_cnt_;
      const std::size_t ci = e.cnt_index(static_cast<netlist::PinId>(pin), rf);
      const std::size_t base = tkoff + ci * e.tk_stride_;
      return {&arr[base], &mu[base], &sig[base], &sp[base], cnt[cntoff + ci]};
    }
    [[nodiscard]] float arc_mu(std::size_t slot, int rf) const {
      return e.amu_[static_cast<std::size_t>(rf)][slotoff + slot];
    }
    [[nodiscard]] float arc_sig(std::size_t slot, int rf) const {
      return e.asig_[static_cast<std::size_t>(rf)][slotoff + slot];
    }
    [[nodiscard]] float sp_mu(std::int32_t sp, int rf) const {
      return e.sp_mu_[static_cast<std::size_t>(rf)]
                     [spoff + static_cast<std::size_t>(sp)];
    }
    [[nodiscard]] float sp_sig(std::int32_t sp, int rf) const {
      return e.sp_sig_[static_cast<std::size_t>(rf)]
                      [spoff + static_cast<std::size_t>(sp)];
    }
  };

  /// Result of the value-parameterized endpoint evaluations.
  struct SetupEval {
    float slack = std::numeric_limits<float>::infinity();
    std::uint8_t worst_rf = 0;
    std::uint64_t lookups = 0;
  };
  struct HoldEval {
    float slack = std::numeric_limits<float>::infinity();
    std::uint64_t lookups = 0;
  };

  void forward_from(std::size_t first_level);
  /// The sparse worklist pass behind run_forward_incremental(): corners run
  /// back-to-back, each over its own frontier state.
  void run_forward_sparse();
  void run_forward_sparse_corner(CornerId corner);
  /// Re-merges one pin of both modes in one corner into thread-local
  /// scratch and commits the result only when it differs bitwise from the
  /// live store. Returns true when anything changed (the pin's fanout must
  /// be dirtied in that corner).
  bool reprocess_pin_sparse(netlist::PinId pin, CornerId corner,
                            ForwardCounters& fc);
  /// Queues `pin` (at graph level `lvl`) on one corner's dirty frontier.
  void mark_dirty(netlist::PinId pin, int lvl, CornerId corner);
  /// Rebuilds every corner's TNS/WNS/violation caches from slack_ /
  /// hold_slack_.
  void recompute_aggregates();
  /// Folds one endpoint's setup-slack change into one corner's
  /// delta-maintained aggregates (and similarly for hold).
  void apply_setup_delta(CornerId corner, float oldv, float newv);
  void apply_hold_delta(CornerId corner, float oldv, float newv);
  void process_pin(netlist::PinId pin, CornerId corner, ForwardCounters& fc);
  void process_pin_early(netlist::PinId pin, CornerId corner,
                         ForwardCounters& fc);
  /// The Algorithm 1+2 merge kernel of one pin/transition/corner into
  /// `dst` (either the live store or sparse scratch). kEarly selects the
  /// min-mode (negated-corner) stores. Thin wrapper over merge_pin_values
  /// with LiveValues.
  template <bool kEarly>
  void merge_pin_rf(netlist::PinId pin, int rf, CornerId corner,
                    const TopKView& dst, ForwardCounters& fc);
  /// Value-parameterized Algorithm 1+2 merge; defined below the class.
  template <bool kEarly, typename Values>
  void merge_pin_values(const Values& vals, netlist::PinId pin, int rf,
                        const TopKView& dst, ForwardCounters& fc) const;
  /// Returns the number of CPPR credit lookups performed.
  std::uint64_t evaluate_endpoint(timing::EndpointId ep, CornerId corner);
  std::uint64_t evaluate_endpoint_hold(timing::EndpointId ep, CornerId corner);
  /// Value-parameterized endpoint evaluations; defined below the class.
  template <typename Values>
  [[nodiscard]] SetupEval evaluate_endpoint_values(const Values& vals,
                                                   timing::EndpointId ep) const;
  template <typename Values>
  [[nodiscard]] HoldEval evaluate_endpoint_hold_values(
      const Values& vals, timing::EndpointId ep) const;
  [[nodiscard]] float credit(std::int32_t sp_node, std::int32_t ep_node) const;
  /// Index into one corner's count plane (tk_cnt_/tk2_cnt_): Top-K stores
  /// are laid out in level order (tk_pos_ is the pin's position in
  /// level_pins_, with unleveled pins appended after), so the pins of one
  /// level occupy one contiguous run of every plane — the level-contiguous
  /// SoA layout the vector kernels stream through.
  [[nodiscard]] std::size_t cnt_index(netlist::PinId pin, int rf) const {
    return static_cast<std::size_t>(
               tk_pos_[static_cast<std::size_t>(pin)]) *
               2 +
           static_cast<std::size_t>(rf);
  }
  /// First slot of a pin/transition's Top-K entries within one corner's
  /// plane. Entries are padded to tk_stride_ (top_k rounded up to 8) so
  /// every entry run starts on a vector-lane boundary; the pad slots are
  /// never read (tail groups are count-mask-loaded).
  [[nodiscard]] std::size_t entry_base(netlist::PinId pin, int rf) const {
    return cnt_index(pin, rf) * tk_stride_;
  }

  // Corner-major plane offsets. Every per-value store is C consecutive
  // single-corner planes; plane c of any array is byte-compatible with the
  // whole array of a single-corner engine.
  [[nodiscard]] std::size_t tk_off(CornerId c) const {
    return static_cast<std::size_t>(c) * corner_stride_;
  }
  [[nodiscard]] std::size_t cnt_off(CornerId c) const {
    return static_cast<std::size_t>(c) * num_pins_ * 2;
  }
  [[nodiscard]] std::size_t slot_off(CornerId c) const {
    return static_cast<std::size_t>(c) * num_slots_;
  }
  [[nodiscard]] std::size_t sp_off(CornerId c) const {
    return static_cast<std::size_t>(c) * num_sps_;
  }
  [[nodiscard]] std::size_t ep_off(CornerId c) const {
    return static_cast<std::size_t>(c) * ep_pin_.size();
  }
  [[nodiscard]] std::size_t arc_off(CornerId c) const {
    return static_cast<std::size_t>(c) * graph_->num_arcs();
  }
  [[nodiscard]] std::size_t pin_off(CornerId c) const {
    return static_cast<std::size_t>(c) * num_pins_;
  }

  const timing::TimingGraph* graph_;
  EngineOptions options_;
  float nsigma_ = 3.0f;

  /// Resolved corner list (never empty; [0] is the implicit default corner
  /// when the options named none) and its size.
  std::vector<CornerSpec> corners_;
  std::size_t C_ = 1;

  /// Resolved kernel dispatch (util::simd::resolve on options_.simd): true
  /// selects the AVX2 flavors for every merge/backward kernel call.
  bool simd_avx2_ = false;
  /// True when fast_math_tolerance > 0 and the AVX2 flavor is active: the
  /// backward softmax runs the vectorized-exp path.
  bool fast_math_ = false;

  std::size_t num_pins_ = 0;
  std::size_t num_slots_ = 0;  ///< fanin slots (fi_from_.size())
  std::size_t num_sps_ = 0;    ///< startpoints

  // Levelized structure (cloned; corner-independent).
  std::vector<std::int32_t> level_start_;
  std::vector<netlist::PinId> level_pins_;

  // Fanin CSR over data arcs; `slot` indexes all per-arc-instance arrays
  // within one corner plane.
  std::vector<std::int32_t> fi_start_;      // per pin, size P+1
  std::vector<netlist::PinId> fi_from_;     // per slot
  std::vector<std::uint8_t> fi_neg_;        // per slot: 1 if negative sense
  std::vector<timing::ArcId> fi_arc_;       // per slot: graph arc id
  std::array<std::vector<float>, 2> amu_;   // per corner*slot, [rf]
  std::array<std::vector<float>, 2> asig_;  // per corner*slot, [rf]
  std::vector<std::int32_t> slot_of_arc_;   // per graph arc, -1 if none

  // Fanout CSR referencing the same slots (for the backward pull).
  std::vector<std::int32_t> fo_start_;   // per pin, size P+1
  std::vector<std::int32_t> fo_slot_;    // per entry: fanin slot id
  std::vector<netlist::PinId> fo_to_;    // per entry: child pin

  // Startpoints. The init arrays are per-corner (each corner scales the
  // launch portion); the clock attributes are shared.
  std::vector<std::int32_t> sp_of_pin_;      // per pin, -1 if none
  std::array<std::vector<float>, 2> sp_mu_;  // init arrival mean, corner*sp
  std::array<std::vector<float>, 2> sp_sig_; // init arrival sigma, corner*sp
  std::vector<float> sp_ck_mu_;              // clock arrival mean (clocked SPs)
  std::vector<float> sp_ck_sig2_;            // clock arrival variance
  std::vector<std::int32_t> sp_node_;        // clock-tree node, -1 for PIs
  std::vector<std::int32_t> launch_sp_of_arc_;  // per graph arc, -1 default

  // Endpoints. Required-time attributes are shared across corners; the
  // slack results are per-corner planes.
  std::vector<netlist::PinId> ep_pin_;
  std::vector<float> ep_base_req_;
  std::vector<float> ep_period_;  ///< capture domain period per endpoint
  std::vector<std::int32_t> ep_node_;     // capture clock-tree node, -1 at POs
  std::vector<float> slack_;              // per corner*endpoint
  std::vector<std::uint8_t> ep_worst_rf_; // per corner*endpoint
  timing::ExceptionTable exceptions_;

  // Clock-tree CPPR tables (cloned; shared across corners).
  std::vector<std::int32_t> ck_parent_;
  std::vector<std::int32_t> ck_depth_;
  std::vector<float> ck_sig2_;

  // Top-K stores: corner-major, level-contiguous SoA planes. A corner owns
  // one contiguous plane of corner_stride_ floats per array; within it, a
  // pin/transition's entries live at [entry_base(pin, rf), +count) with
  // capacity top_k inside a tk_stride_-sized run, runs ordered by tk_pos_
  // (level order) — so a (corner, level) pair's stores are one contiguous
  // streamable block per plane and the PR 8 kernels run unchanged off a
  // corner-offset base pointer.
  std::vector<std::int32_t> tk_pos_;  // per pin: position in level order
  std::size_t tk_stride_ = 0;         // top_k rounded up to 8 (lane width)
  std::size_t corner_stride_ = 0;     // num_pins * 2 * tk_stride_
  std::vector<float> tk_arr_;
  std::vector<float> tk_mu_;
  std::vector<float> tk_sig_;
  std::vector<std::int32_t> tk_sp_;
  std::vector<std::int32_t> tk_cnt_;  // per corner*(position*2 + rf)

  // Early (min-mode) Top-K stores; tk2_arr_ holds *negated* early corners
  // so the same descending-list kernel keeps the smallest arrivals.
  std::vector<float> tk2_arr_;
  std::vector<float> tk2_mu_;
  std::vector<float> tk2_sig_;
  std::vector<std::int32_t> tk2_sp_;
  std::vector<std::int32_t> tk2_cnt_;
  std::vector<float> ep_hold_base_;  ///< late capture clock + hold, per ep
  std::vector<float> hold_slack_;    ///< per corner*endpoint

  // ---- frontier-sparse incremental state (all per-corner) -------------------
  //
  // Fully independent per-corner frontier state is a correctness decision,
  // not a convenience: folding corners into one shared worklist would
  // interleave each corner's dirty-endpoint order with the others', and
  // the double-precision TNS delta folds are order-sensitive — the merged
  // engine would drift from C independent engines in the last bit. With
  // per-corner state walked corner-by-corner, every corner replays exactly
  // the operation sequence of its independent twin.

  /// Per corner: shallowest level with a queued dirty pin (SIZE_MAX clean).
  std::vector<std::size_t> dirty_level_;
  /// True until the first full forward pass: every pin is implicitly dirty
  /// and run_forward_incremental() falls back to the dense sweep.
  bool full_dirty_ = true;
  std::vector<std::int32_t> ep_of_pin_;  ///< per pin: endpoint id or -1
  std::vector<std::uint8_t> dirty_pin_;  ///< per corner*pin: queued flag
  /// Per-(corner, level) compact worklists of dirty pins, indexed
  /// corner*num_levels + level. Vectors keep their capacity across passes,
  /// so steady-state sparse passes allocate nothing.
  std::vector<std::vector<netlist::PinId>> frontier_;
  /// Per corner: endpoints to re-evaluate this pass.
  std::vector<std::vector<timing::EndpointId>> dirty_eps_;
  std::vector<std::uint8_t> changed_flags_;     ///< per frontier slot scratch
  std::vector<float> old_slack_scratch_;        ///< pre-eval setup slacks
  std::vector<float> old_hold_scratch_;         ///< pre-eval hold slacks
  SparseStats last_pass_;

  /// One Transaction active at a time; set by begin_edit, cleared by
  /// commit/rollback.
  bool txn_active_ = false;

  /// Completed forward passes (see generation()).
  std::uint64_t generation_ = 0;

  // Per-corner delta-maintained global metrics (exactly rebuilt by every
  // full pass).
  std::vector<double> tns_cache_;
  std::vector<int> nviol_cache_;
  std::vector<double> ths_cache_;
  std::vector<int> nhold_viol_cache_;
  /// wns/whs caches are lazily rebuilt per corner when the endpoint holding
  /// the minimum may have improved (wns_valid_[c] == 0).
  mutable std::vector<float> wns_cache_;
  mutable std::vector<std::uint8_t> wns_any_;
  mutable std::vector<std::uint8_t> wns_valid_;
  mutable std::vector<float> whs_cache_;
  mutable std::vector<std::uint8_t> whs_any_;
  mutable std::vector<std::uint8_t> whs_valid_;

  /// Generation-stamped merged_summary() caches (recomputed on demand by an
  /// endpoint-major scan; never delta-maintained, so they cannot drift).
  mutable SlackSummary merged_setup_cache_;
  mutable SlackSummary merged_hold_cache_;
  mutable std::uint64_t merged_setup_gen_ =
      std::numeric_limits<std::uint64_t>::max();
  mutable std::uint64_t merged_hold_gen_ =
      std::numeric_limits<std::uint64_t>::max();

  // Backward state (per-corner planes over the single-corner layouts).
  std::array<std::vector<float>, 2> w_;  // per corner*slot, [rf]: Eq. 6 weights
  std::vector<float> pin_grad_;          // per corner*pin*2
  std::vector<float> slot_grad_;         // per corner*slot
  std::vector<float> arc_grad_;          // per corner*graph arc
  /// Per-slot parent count index (tk_pos_[from]*2 + prf), the gather table
  /// of the backward candidate kernel. Structure-only and corner-relative
  /// (the kernel's base pointers carry the corner offset); built once.
  std::array<std::vector<std::int32_t>, 2> slot_ci_;
  /// Per-corner*slot LSE candidate scratch of backward phase 1.
  std::array<std::vector<float>, 2> bw_cand_;
  /// Weight-reuse tracking: false until the first backward pass (or after
  /// any dense forward), meaning every pin's weights must be recomputed.
  /// While true, w_stale_/w_stale_pins_ name exactly the pins whose weight
  /// inputs may have changed (each corner's sparse-forward frontier).
  bool w_tracking_ = false;
  std::vector<std::uint8_t> w_stale_;                   // per corner*pin
  std::vector<std::vector<netlist::PinId>> w_stale_pins_;  // per corner
  BackwardStats last_backward_;

  /// Recomputes the Eq. 6 weights of one pin (both transitions) in one
  /// corner from the bw_cand_ scratch, writing w_[rf][slot_off(c)+fs, +fe).
  /// Default mode: scalar libm exp + sequential denominator (bit-identical
  /// across kernel flavors); fast_math_ mode: vectorized exp +
  /// reassociated sums.
  void compute_weights_pin(std::size_t p, float tau, CornerId corner);
  /// Marks one pin's weights stale in one corner (no-op unless tracking).
  void mark_weights_stale(netlist::PinId pin, CornerId corner);
  /// Invalidates all weight reuse (dense pass, structural uncertainty).
  void invalidate_weights();
};

// ---- shared value-parameterized kernels -------------------------------------
//
// The dense pass, the frontier-sparse pass, and ScenarioBatch's copy-on-write
// overlays all execute these exact instruction sequences; only the Values
// adapter differs (live stores vs overlay-first reads, and which corner's
// plane the adapter is bound to). A single body is what turns "scenario and
// multi-corner results are bit-identical to sequential single-corner passes"
// from a testing aspiration into a structural property.

/// The Algorithm 1+2 merge of one pin/transition, writing into `dst` —
/// the pin's live Top-K slice (dense pass), thread-local scratch (sparse
/// pass), or a scenario's overlay slab. kEarly selects the min-mode
/// parent stores, whose arr slots hold *negated* early corners so the same
/// descending unique-SP list keeps the K smallest early arrivals.
template <bool kEarly, typename Values>
void Engine::merge_pin_values(const Values& vals, netlist::PinId pin, int rf,
                              const TopKView& dst, ForwardCounters& fc) const {
  const auto p = static_cast<std::size_t>(pin);
  const std::int32_t fs = fi_start_[p];
  const std::int32_t fe = fi_start_[p + 1];

  *dst.count = 0;
  if (fs == fe) {
    const std::int32_t sp = sp_of_pin_[p];
    if (sp < 0) return;
    const float mu = vals.sp_mu(sp, rf);
    const float sig = vals.sp_sig(sp, rf);
    dst.arr[0] = kEarly ? -(mu - nsigma_ * sig) : (mu + nsigma_ * sig);
    dst.mu[0] = mu;
    dst.sig[0] = sig;
    dst.sp[0] = sp;
    *dst.count = 1;
    return;
  }

  // Materialize the fanin candidate lists in chunks, then hand each batch
  // to the dispatched merge kernel (topk_simd.cpp). The chunk bounds the
  // stack footprint on high-fanin pins; within a batch the kernel
  // prefetches the next arc's parent planes (the CSR-indirect reads) while
  // merging the current one.
  constexpr std::int32_t kChunk = 16;
  MergeArc batch[kChunk];
  MergeCounters mc;
  for (std::int32_t s = fs; s < fe; s += kChunk) {
    const std::int32_t n = std::min<std::int32_t>(kChunk, fe - s);
    for (std::int32_t j = 0; j < n; ++j) {
      const auto si = static_cast<std::size_t>(s + j);
      const int prf = rf ^ static_cast<int>(fi_neg_[si]);
      const auto from = static_cast<std::size_t>(fi_from_[si]);
      batch[j].par = vals.parent(from, prf, kEarly);
      batch[j].am = vals.arc_mu(si, rf);
      const float as = vals.arc_sig(si, rf);
      batch[j].as2 = as * as;
    }
    fc.arcs += static_cast<std::uint64_t>(n);
    merge_arcs(simd_avx2_, dst, batch, static_cast<int>(n), nsigma_, kEarly,
               mc);
  }
  fc.merges += mc.merges;
  fc.prunes += mc.prunes;
}

/// Setup slack of one endpoint over the visible Top-K store (live or
/// overlay): min over both transitions and every kept unique-startpoint
/// arrival of required - arrival, with CPPR credit and timing exceptions.
template <typename Values>
Engine::SetupEval Engine::evaluate_endpoint_values(const Values& vals,
                                                   timing::EndpointId ep) const {
  const auto e = static_cast<std::size_t>(ep);
  const auto pin = static_cast<std::size_t>(ep_pin_[e]);
  const std::int32_t ep_node = ep_node_[e];
  const float base = ep_base_req_[e];
  SetupEval out;
  const bool has_exceptions = exceptions_.size() != 0;
  for (int rf = 0; rf < 2; ++rf) {
    const TopKConstView view = vals.parent(pin, rf, /*early=*/false);
    for (std::int32_t kk = 0; kk < view.cnt; ++kk) {
      const std::int32_t sp = view.sp[kk];
      if (has_exceptions && exceptions_.is_false_path(sp, ep)) continue;
      ++out.lookups;
      float req = base + credit(sp_node_[static_cast<std::size_t>(sp)], ep_node);
      if (has_exceptions) {
        req += static_cast<float>(
            exceptions_.required_shift(sp, ep, static_cast<double>(ep_period_[e])));
      }
      const float slack = req - view.arr[kk];
      if (slack < out.slack) {
        out.slack = slack;
        out.worst_rf = static_cast<std::uint8_t>(rf);
      }
    }
  }
  return out;
}

/// Hold slack of one endpoint over the visible early-mode store.
template <typename Values>
Engine::HoldEval Engine::evaluate_endpoint_hold_values(
    const Values& vals, timing::EndpointId ep) const {
  const auto e = static_cast<std::size_t>(ep);
  const float base = ep_hold_base_[e];
  HoldEval out;
  if (std::isnan(base)) return out;  // unclocked endpoint: no hold check
  const auto pin = static_cast<std::size_t>(ep_pin_[e]);
  const std::int32_t ep_node = ep_node_[e];
  const bool has_exceptions = exceptions_.size() != 0;
  for (int rf = 0; rf < 2; ++rf) {
    const TopKConstView view = vals.parent(pin, rf, /*early=*/true);
    for (std::int32_t kk = 0; kk < view.cnt; ++kk) {
      const std::int32_t sp = view.sp[kk];
      if (has_exceptions && exceptions_.is_false_path(sp, ep)) continue;
      ++out.lookups;
      const float req =
          base - credit(sp_node_[static_cast<std::size_t>(sp)], ep_node);
      const float early = -view.arr[kk];
      out.slack = std::min(out.slack, early - req);
    }
  }
  return out;
}

}  // namespace insta::core
