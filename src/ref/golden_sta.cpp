#include "ref/golden_sta.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace insta::ref {

using netlist::kNullPin;
using netlist::PinId;
using netlist::RiseFall;
using timing::ArcDelta;
using timing::ArcId;
using timing::ArcKind;
using timing::ArcRecord;
using timing::ArcSense;
using timing::EndpointId;
using timing::StartpointId;
using util::check;

GoldenSta::GoldenSta(const timing::TimingGraph& graph,
                     const timing::Constraints& constraints,
                     timing::ArcDelays& delays, GoldenOptions options)
    : graph_(&graph),
      constraints_(&constraints),
      delays_(&delays),
      options_(options),
      exceptions_(graph, constraints.exceptions) {
  check(delays.size() == graph.num_arcs(),
        "GoldenSta: delays not computed for this graph");
  arr_.assign(graph.design().num_pins() * 2, {});
  arr_early_.assign(graph.design().num_pins() * 2, {});
  slack_.assign(graph.endpoints().size(), kNoArrivalSlack);
  hold_slack_.assign(graph.endpoints().size(), kNoArrivalSlack);
}

GoldenSta::SpInit GoldenSta::sp_init(StartpointId sp_id) const {
  const timing::Startpoint& sp =
      graph_->startpoints()[static_cast<std::size_t>(sp_id)];
  SpInit init;
  if (!sp.clocked) {
    init.mu = {constraints_->input_arrival_mu, constraints_->input_arrival_mu};
    init.sigma = {constraints_->input_arrival_sigma,
                  constraints_->input_arrival_sigma};
    return init;
  }
  check(clock_ != nullptr, "sp_init: clock analysis not ready");
  const auto [first, last] = graph_->cell_arcs(sp.cell);
  check(last - first == 1 && graph_->arc(first).kind == ArcKind::kLaunch,
        "sp_init: FF must have exactly one launch arc");
  const double ck_mu = clock_->ck_mu(sp.cell);
  const double ck_sig2 = clock_->ck_sig2(sp.cell);
  for (const int rf : {0, 1}) {
    const double lmu = delays_->mu[rf][static_cast<std::size_t>(first)];
    const double lsig = delays_->sigma[rf][static_cast<std::size_t>(first)];
    init.mu[static_cast<std::size_t>(rf)] = ck_mu + lmu;
    init.sigma[static_cast<std::size_t>(rf)] = std::sqrt(ck_sig2 + lsig * lsig);
  }
  return init;
}

double GoldenSta::ep_period(EndpointId ep_id) const {
  const timing::Endpoint& ep =
      graph_->endpoints()[static_cast<std::size_t>(ep_id)];
  if (!ep.clocked) return constraints_->clock_period;
  check(clock_ != nullptr, "ep_period: clock analysis not ready");
  return constraints_->period_of_domain(clock_->domain_of_ff(ep.cell));
}

double GoldenSta::ep_base_required(EndpointId ep_id) const {
  const timing::Endpoint& ep =
      graph_->endpoints()[static_cast<std::size_t>(ep_id)];
  if (!ep.clocked) {
    return constraints_->clock_period - constraints_->output_margin;
  }
  check(clock_ != nullptr, "ep_base_required: clock analysis not ready");
  const netlist::LibCell& lc = graph_->design().libcell_of(ep.cell);
  return ep_period(ep_id) + clock_->early_ck(ep.cell) - lc.setup;
}

void GoldenSta::finalize_entries(std::vector<ArrivalEntry>& entries,
                                 bool early) const {
  if (entries.empty()) return;
  // Unique per startpoint, keeping the worst corner (maximum for late mode,
  // minimum for early mode); ties broken totally so that full and
  // incremental updates produce bit-identical sets.
  const double dir = early ? -1.0 : 1.0;
  auto total_less = [dir](const ArrivalEntry& a, const ArrivalEntry& b) {
    if (a.sp != b.sp) return a.sp < b.sp;
    if (a.corner != b.corner) return dir * a.corner > dir * b.corner;
    if (a.mu != b.mu) return dir * a.mu > dir * b.mu;
    return dir * a.sigma > dir * b.sigma;
  };
  std::sort(entries.begin(), entries.end(), total_less);
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const ArrivalEntry& a, const ArrivalEntry& b) {
                              return a.sp == b.sp;
                            }),
                entries.end());
  auto corner_less = [dir](const ArrivalEntry& a, const ArrivalEntry& b) {
    if (a.corner != b.corner) return dir * a.corner > dir * b.corner;
    return a.sp < b.sp;
  };
  std::sort(entries.begin(), entries.end(), corner_less);
  if (std::isfinite(options_.prune_window)) {
    const double floor = dir * entries.front().corner - options_.prune_window;
    while (!entries.empty() && dir * entries.back().corner < floor) {
      entries.pop_back();
    }
  }
  if (entries.size() > options_.max_entries) entries.resize(options_.max_entries);
#ifndef NDEBUG
  // Algorithm 1 invariant: after finalize the set is unique per startpoint and
  // sorted by corner (worst first). The Top-K engine's seeding relies on this.
  for (std::size_t i = 1; i < entries.size(); ++i) {
    INSTA_DCHECK(entries[i - 1].sp != entries[i].sp,
                 "finalize_entries: duplicate startpoint survived dedup");
    INSTA_DCHECK(dir * entries[i - 1].corner >= dir * entries[i].corner,
                 "finalize_entries: corners not sorted worst-first");
  }
#endif
}

void GoldenSta::recompute_pin(PinId pin, RiseFall rf, bool early,
                              std::vector<ArrivalEntry>& out) const {
  out.clear();
  const double nsig = (early ? -1.0 : 1.0) * constraints_->nsigma;
  const auto& source = early ? arr_early_ : arr_;
  const auto fanin = graph_->fanin(pin);
  if (fanin.empty()) {
    const StartpointId sp = graph_->startpoint_of_pin(pin);
    if (sp == timing::kNullStartpoint) return;
    const SpInit init = sp_init(sp);
    const int rfi = netlist::rf_index(rf);
    ArrivalEntry e;
    e.sp = sp;
    e.mu = init.mu[static_cast<std::size_t>(rfi)];
    e.sigma = init.sigma[static_cast<std::size_t>(rfi)];
    e.corner = e.mu + nsig * e.sigma;
    out.push_back(e);
    return;
  }
  const int rfi = netlist::rf_index(rf);
  for (const ArcId aid : fanin) {
    const ArcRecord& a = graph_->arc(aid);
    const RiseFall prf = (a.sense == ArcSense::kPositive) ? rf : opposite(rf);
    const double amu = delays_->mu[rfi][static_cast<std::size_t>(aid)];
    const double asig = delays_->sigma[rfi][static_cast<std::size_t>(aid)];
    INSTA_DCHECK(std::isfinite(amu) && asig >= 0.0,
                 "recompute_pin: non-finite mu or negative sigma on arc");
    for (const ArrivalEntry& p : source[slot(a.from, prf)]) {
      ArrivalEntry e;
      e.sp = p.sp;
      e.mu = p.mu + amu;
      e.sigma = std::sqrt(p.sigma * p.sigma + asig * asig);
      e.corner = e.mu + nsig * e.sigma;
      out.push_back(e);
    }
  }
  finalize_entries(out, early);
}

void GoldenSta::update_full() {
  INSTA_TRACE_SCOPE("golden.update_full");
  static telemetry::Counter full_updates =
      telemetry::MetricsRegistry::global().counter("golden.full_updates");
  static telemetry::Counter pins_propagated =
      telemetry::MetricsRegistry::global().counter("golden.pins_propagated");
  full_updates.inc();
  {
    INSTA_TRACE_SCOPE("golden.clock");
    clock_ = std::make_unique<timing::ClockAnalysis>(*graph_, *delays_,
                                                     constraints_->nsigma);
  }
  last_pins_ = 0;
  auto& pool = util::ThreadPool::global();
  for (std::size_t l = 0; l < graph_->num_levels(); ++l) {
    const auto pins = graph_->level(l);
    last_pins_ += pins.size();
    auto process = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const PinId p = pins[i];
        for (const RiseFall rf : netlist::kBothTransitions) {
          recompute_pin(p, rf, /*early=*/false, arr_[slot(p, rf)]);
          if (options_.enable_hold) {
            recompute_pin(p, rf, /*early=*/true, arr_early_[slot(p, rf)]);
          }
        }
      }
    };
    if (options_.parallel) {
      pool.parallel_for_chunks(0, pins.size(), process, 64);
    } else {
      process(0, pins.size());
    }
  }
  pins_propagated.add(last_pins_);
  INSTA_TRACE_SCOPE("golden.slacks");
  for (std::size_t e = 0; e < graph_->endpoints().size(); ++e) {
    compute_slack(static_cast<EndpointId>(e));
    if (options_.enable_hold) compute_hold_slack(static_cast<EndpointId>(e));
  }
}

void GoldenSta::update_incremental(std::span<const ArcId> changed) {
  INSTA_TRACE_SCOPE("golden.update_incremental",
                    static_cast<std::int64_t>(changed.size()));
  static telemetry::Counter incr_updates =
      telemetry::MetricsRegistry::global().counter(
          "golden.incremental_updates");
  static telemetry::Counter invalidated =
      telemetry::MetricsRegistry::global().counter("golden.invalidated_pins");
  static telemetry::Counter eps_recomputed =
      telemetry::MetricsRegistry::global().counter(
          "golden.endpoints_recomputed");
  static telemetry::Counter full_fallbacks =
      telemetry::MetricsRegistry::global().counter(
          "golden.incremental.full_fallbacks");
  incr_updates.inc();
  check(clock_ != nullptr, "update_incremental: call update_full first");
  const std::size_t num_levels = graph_->num_levels();
  std::vector<std::vector<PinId>> buckets(num_levels);
  std::vector<char> queued(graph_->design().num_pins(), 0);

  auto push = [&](PinId p) {
    const int lvl = graph_->level_of(p);
    check(lvl >= 0, "update_incremental: clock pin in data cone");
    if (queued[static_cast<std::size_t>(p)]) return;
    queued[static_cast<std::size_t>(p)] = 1;
    buckets[static_cast<std::size_t>(lvl)].push_back(p);
  };

  for (const ArcId aid : changed) {
    const ArcRecord& a = graph_->arc(aid);
    if (graph_->is_clock_network(a.from) || graph_->is_clock_network(a.to)) {
      // Clock arrivals (and so required times and CPPR) changed: full update.
      full_fallbacks.inc();
      update_full();
      return;
    }
    push(a.to);
  }

  last_pins_ = 0;
  std::vector<ArrivalEntry> scratch;
  std::vector<EndpointId> touched_eps;
  for (std::size_t l = 0; l < num_levels; ++l) {
    for (const PinId p : buckets[l]) {
      ++last_pins_;
      bool changed_pin = false;
      auto same = [](const ArrivalEntry& a, const ArrivalEntry& b) {
        return a.sp == b.sp && a.mu == b.mu && a.sigma == b.sigma;
      };
      for (const RiseFall rf : netlist::kBothTransitions) {
        recompute_pin(p, rf, /*early=*/false, scratch);
        auto& cur = arr_[slot(p, rf)];
        if (scratch.size() != cur.size() ||
            !std::equal(scratch.begin(), scratch.end(), cur.begin(), same)) {
          cur = scratch;
          changed_pin = true;
        }
        if (options_.enable_hold) {
          recompute_pin(p, rf, /*early=*/true, scratch);
          auto& cur_early = arr_early_[slot(p, rf)];
          if (scratch.size() != cur_early.size() ||
              !std::equal(scratch.begin(), scratch.end(), cur_early.begin(),
                          same)) {
            cur_early = scratch;
            changed_pin = true;
          }
        }
      }
      if (!changed_pin) continue;
      const EndpointId ep = graph_->endpoint_of_pin(p);
      if (ep != timing::kNullEndpoint) touched_eps.push_back(ep);
      for (const ArcId aid : graph_->fanout(p)) push(graph_->arc(aid).to);
    }
  }
  invalidated.add(last_pins_);
  eps_recomputed.add(touched_eps.size());
  for (const EndpointId ep : touched_eps) {
    compute_slack(ep);
    if (options_.enable_hold) compute_hold_slack(ep);
  }
}

void GoldenSta::annotate_and_update(std::span<const ArcDelta> deltas) {
  std::vector<ArcId> ids;
  ids.reserve(deltas.size());
  for (const ArcDelta& d : deltas) {
    for (const int rf : {0, 1}) {
      delays_->mu[rf][static_cast<std::size_t>(d.arc)] =
          d.mu[static_cast<std::size_t>(rf)];
      delays_->sigma[rf][static_cast<std::size_t>(d.arc)] =
          d.sigma[static_cast<std::size_t>(rf)];
    }
    ids.push_back(d.arc);
  }
  update_incremental(ids);
}

void GoldenSta::compute_slack(EndpointId ep_id) {
  const timing::Endpoint& ep =
      graph_->endpoints()[static_cast<std::size_t>(ep_id)];
  const double base = ep_base_required(ep_id);
  const netlist::CellId cap_cell = ep.clocked ? ep.cell : netlist::kNullCell;
  double slack = kNoArrivalSlack;
  for (const RiseFall rf : netlist::kBothTransitions) {
    for (const ArrivalEntry& e : arr_[slot(ep.pin, rf)]) {
      if (exceptions_.size() != 0) {
        if (exceptions_.is_false_path(e.sp, ep_id)) continue;
      }
      const timing::Startpoint& sp =
          graph_->startpoints()[static_cast<std::size_t>(e.sp)];
      const netlist::CellId launch_cell =
          sp.clocked ? sp.cell : netlist::kNullCell;
      double req = base + clock_->credit(launch_cell, cap_cell);
      if (exceptions_.size() != 0) {
        req += exceptions_.required_shift(e.sp, ep_id, ep_period(ep_id));
      }
      slack = std::min(slack, req - e.corner);
    }
  }
  slack_[static_cast<std::size_t>(ep_id)] = slack;
}

void GoldenSta::compute_hold_slack(EndpointId ep_id) {
  const timing::Endpoint& ep =
      graph_->endpoints()[static_cast<std::size_t>(ep_id)];
  double slack = kNoArrivalSlack;
  if (ep.clocked) {
    // Hold check: the earliest same-cycle data arrival must not beat the
    // capture clock's late corner plus the hold requirement; common clock
    // path pessimism is removed just as for setup.
    const netlist::LibCell& lc = graph_->design().libcell_of(ep.cell);
    const double base = clock_->late_ck(ep.cell) + lc.hold;
    for (const RiseFall rf : netlist::kBothTransitions) {
      for (const ArrivalEntry& e : arr_early_[slot(ep.pin, rf)]) {
        if (exceptions_.size() != 0 && exceptions_.is_false_path(e.sp, ep_id)) {
          continue;
        }
        const timing::Startpoint& sp =
            graph_->startpoints()[static_cast<std::size_t>(e.sp)];
        const netlist::CellId launch =
            sp.clocked ? sp.cell : netlist::kNullCell;
        const double req = base - clock_->credit(launch, ep.cell);
        slack = std::min(slack, e.corner - req);
      }
    }
  }
  hold_slack_[static_cast<std::size_t>(ep_id)] = slack;
}

double GoldenSta::whs() const {
  double w = 0.0;
  bool any = false;
  for (const double s : hold_slack_) {
    if (!std::isfinite(s)) continue;
    if (!any || s < w) {
      w = s;
      any = true;
    }
  }
  return any ? w : 0.0;
}

double GoldenSta::ths() const {
  double t = 0.0;
  for (const double s : hold_slack_) {
    if (std::isfinite(s) && s < 0.0) t += s;
  }
  return t;
}

int GoldenSta::num_hold_violations() const {
  int n = 0;
  for (const double s : hold_slack_) {
    if (std::isfinite(s) && s < 0.0) ++n;
  }
  return n;
}

double GoldenSta::wns() const {
  double w = 0.0;
  bool any = false;
  for (const double s : slack_) {
    if (!std::isfinite(s)) continue;
    if (!any || s < w) {
      w = s;
      any = true;
    }
  }
  return any ? w : 0.0;
}

double GoldenSta::tns() const {
  double t = 0.0;
  for (const double s : slack_) {
    if (std::isfinite(s) && s < 0.0) t += s;
  }
  return t;
}

int GoldenSta::num_violations() const {
  int n = 0;
  for (const double s : slack_) {
    if (std::isfinite(s) && s < 0.0) ++n;
  }
  return n;
}

double GoldenSta::worst_arrival(PinId pin) const {
  double worst = -std::numeric_limits<double>::infinity();
  for (const RiseFall rf : netlist::kBothTransitions) {
    const auto& v = arr_[slot(pin, rf)];
    if (!v.empty()) worst = std::max(worst, v.front().corner);
  }
  return worst;
}

}  // namespace insta::ref
