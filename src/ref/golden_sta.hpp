#pragma once

#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "timing/clock.hpp"
#include "timing/constraints.hpp"
#include "timing/delay_calc.hpp"
#include "timing/graph.hpp"
#include "timing/types.hpp"
#include "util/check.hpp"

namespace insta::ref {

/// One startpoint-tagged statistical arrival at a pin.
struct ArrivalEntry {
  timing::StartpointId sp = timing::kNullStartpoint;
  double mu = 0.0;
  double sigma = 0.0;
  double corner = 0.0;  ///< mu + nsigma*sigma, the propagated "arrival time"
};

/// Options of the golden engine.
struct GoldenOptions {
  /// Entries whose corner is more than this below a pin's best corner are
  /// pruned. Exact endpoint slack needs a window of at least the maximum
  /// CPPR credit in the design (see DESIGN.md); infinity disables pruning.
  double prune_window = std::numeric_limits<double>::infinity();
  /// Hard cap on entries kept per pin/transition (SIZE_MAX: no cap).
  std::size_t max_entries = std::numeric_limits<std::size_t>::max();
  /// Worker threads for level-parallel propagation (0: global pool).
  bool parallel = true;
  /// Also propagate early (minimum) arrivals and evaluate hold checks —
  /// the min-mode analysis a signoff engine runs alongside setup. Off by
  /// default: the paper's experiments are setup-only.
  bool enable_hold = false;
};

/// Slack value used for unconstrained endpoints (no arrival reaches them).
inline constexpr double kNoArrivalSlack = std::numeric_limits<double>::infinity();

/// The golden reference STA engine — this repository's stand-in for the
/// paper's Synopsys PrimeTime (signoff mode, POCV enabled).
///
/// It propagates *exact* per-startpoint statistical arrivals (a set of
/// startpoint-tagged Gaussians per pin and transition), computes CPPR
/// credits at the clock-tree LCA of each launch/capture pair, applies
/// timing exceptions, and reports endpoint slacks, WNS and TNS.
///
/// It also plays PrimeTime's other roles in the experiments:
///   * update_full        — a full `update_timing`,
///   * update_incremental — incremental `update_timing` after arc-delay
///     changes (cone re-propagation with early termination),
///   * together with DelayCalculator::estimate_eco, the delay re-annotation
///     source for the INSTA engine.
///
/// The INSTA engine (src/core) initializes itself exclusively from this
/// engine's public accessors: arc delays, startpoint initial arrivals,
/// endpoint base required times, clock-tree CPPR tables, and exceptions —
/// the "one-time initialization" of the paper's Figure 2.
class GoldenSta {
 public:
  /// Binds the engine to a graph, constraints and a delay store. All three
  /// must outlive the engine; `delays` is owned by the caller and shared
  /// with the delay calculator. Call update_full() before reading results.
  GoldenSta(const timing::TimingGraph& graph,
            const timing::Constraints& constraints, timing::ArcDelays& delays,
            GoldenOptions options = {});

  // ---- timing updates -----------------------------------------------------

  /// Full timing update: rebuilds the clock analysis, re-propagates every
  /// pin, recomputes every endpoint slack.
  void update_full();

  /// Incremental update after the given arcs changed delay. Re-propagates
  /// only the affected fanout cone, stopping where arrival sets are
  /// unchanged. Falls back to update_full() if a clock-network arc changed.
  void update_incremental(std::span<const timing::ArcId> changed);

  /// Writes the deltas into the delay store, then updates incrementally.
  void annotate_and_update(std::span<const timing::ArcDelta> deltas);

  // ---- results --------------------------------------------------------------

  /// Slack of one endpoint, ps (kNoArrivalSlack if unconstrained).
  [[nodiscard]] double endpoint_slack(timing::EndpointId ep) const {
    return slack_[static_cast<std::size_t>(ep)];
  }

  /// All endpoint slacks, indexed by endpoint id.
  [[nodiscard]] std::span<const double> endpoint_slacks() const { return slack_; }

  /// Worst negative slack: the minimum endpoint slack, ps.
  [[nodiscard]] double wns() const;

  /// Total negative slack: the sum of all negative endpoint slacks, ps.
  [[nodiscard]] double tns() const;

  /// Number of endpoints with negative slack.
  [[nodiscard]] int num_violations() const;

  /// Arrival entries at a pin/transition, sorted by descending corner.
  [[nodiscard]] std::span<const ArrivalEntry> arrivals(
      netlist::PinId pin, netlist::RiseFall rf) const {
    return arr_[slot(pin, rf)];
  }

  // ---- hold (min-mode) results; valid when options.enable_hold ------------

  /// Early arrival entries (corner = mu - nsigma*sigma, ascending).
  [[nodiscard]] std::span<const ArrivalEntry> early_arrivals(
      netlist::PinId pin, netlist::RiseFall rf) const {
    return arr_early_[slot(pin, rf)];
  }

  /// Hold slack of one endpoint, ps (kNoArrivalSlack if unconstrained or
  /// hold analysis is disabled).
  [[nodiscard]] double hold_slack(timing::EndpointId ep) const {
    return hold_slack_[static_cast<std::size_t>(ep)];
  }

  /// All hold slacks, indexed by endpoint id.
  [[nodiscard]] std::span<const double> hold_slacks() const { return hold_slack_; }

  /// Worst hold slack, ps (0 if no finite hold slack).
  [[nodiscard]] double whs() const;

  /// Total negative hold slack, ps.
  [[nodiscard]] double ths() const;

  /// Number of endpoints with negative hold slack.
  [[nodiscard]] int num_hold_violations() const;

  /// The worst (maximum) arrival corner at a pin over both transitions;
  /// -infinity if nothing arrives.
  [[nodiscard]] double worst_arrival(netlist::PinId pin) const;

  // ---- initialization data for the INSTA engine (Figure 2) -----------------

  /// Startpoint initial arrival distribution, per transition.
  struct SpInit {
    std::array<double, 2> mu{0.0, 0.0};
    std::array<double, 2> sigma{0.0, 0.0};
  };

  /// Initial (launch) arrival of a startpoint: clock arrival + clk->Q for
  /// FF launches, the constrained input arrival for primary inputs.
  [[nodiscard]] SpInit sp_init(timing::StartpointId sp) const;

  /// Endpoint required time before CPPR credit and exception shifts:
  /// period + early capture-clock arrival - setup (FF), or period - margin
  /// (primary outputs). The period is the capture FF's clock domain's.
  [[nodiscard]] double ep_base_required(timing::EndpointId ep) const;

  /// Clock period governing an endpoint (its capture domain's; the primary
  /// period for primary outputs).
  [[nodiscard]] double ep_period(timing::EndpointId ep) const;

  [[nodiscard]] const timing::TimingGraph& graph() const { return *graph_; }
  [[nodiscard]] const timing::Constraints& constraints() const { return *constraints_; }
  [[nodiscard]] const timing::ArcDelays& delays() const { return *delays_; }

  /// Mutable access to the shared delay store (the same object the delay
  /// calculator annotates). Callers that write through it must follow up
  /// with update_incremental()/update_full().
  [[nodiscard]] timing::ArcDelays& mutable_delays() { return *delays_; }
  [[nodiscard]] const timing::ClockAnalysis& clock() const {
    util::check(clock_ != nullptr, "GoldenSta::clock: run update_full first");
    return *clock_;
  }
  [[nodiscard]] const timing::ExceptionTable& exceptions() const { return exceptions_; }

  /// Number of pins re-propagated by the last update (full or incremental);
  /// instrumentations for the Fig. 7 runtime study.
  [[nodiscard]] std::size_t last_update_pin_count() const { return last_pins_; }

 private:
  [[nodiscard]] std::size_t slot(netlist::PinId pin, netlist::RiseFall rf) const {
    return static_cast<std::size_t>(pin) * 2 + netlist::rf_index(rf);
  }
  /// Recomputes the arrival set of one pin/transition into `out`.
  /// `early` selects min-mode (corner = mu - nsigma*sigma, keep minima).
  void recompute_pin(netlist::PinId pin, netlist::RiseFall rf, bool early,
                     std::vector<ArrivalEntry>& out) const;
  void finalize_entries(std::vector<ArrivalEntry>& entries, bool early) const;
  void compute_slack(timing::EndpointId ep);
  void compute_hold_slack(timing::EndpointId ep);

  const timing::TimingGraph* graph_;
  const timing::Constraints* constraints_;
  timing::ArcDelays* delays_;
  GoldenOptions options_;
  timing::ExceptionTable exceptions_;
  std::unique_ptr<timing::ClockAnalysis> clock_;

  std::vector<std::vector<ArrivalEntry>> arr_;        // [pin*2 + rf]
  std::vector<std::vector<ArrivalEntry>> arr_early_;  // min-mode, if enabled
  std::vector<double> slack_;                         // per endpoint
  std::vector<double> hold_slack_;                    // per endpoint
  std::size_t last_pins_ = 0;
};

}  // namespace insta::ref
