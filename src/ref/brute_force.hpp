#pragma once

#include <span>
#include <vector>

#include "timing/constraints.hpp"
#include "timing/graph.hpp"
#include "timing/types.hpp"

namespace insta::ref {

/// Exhaustive path-enumeration STA oracle for tests.
///
/// Walks every path from every startpoint, tracking the full (mu, sigma^2)
/// distribution per path, and evaluates endpoint slacks with exact per-pair
/// CPPR credits and exceptions. Exponential in reconvergence depth — use
/// only on small designs. Deliberately shares no propagation code with
/// GoldenSta so the two implementations check each other.
[[nodiscard]] std::vector<double> brute_force_endpoint_slacks(
    const timing::TimingGraph& graph, const timing::Constraints& constraints,
    const timing::ArcDelays& delays);

/// Exhaustive hold-check oracle: enumerates every path tracking the full
/// distribution, takes the per-(endpoint, startpoint) *earliest* corner
/// (mu - nsigma*sigma), and evaluates hold slacks against the late capture
/// clock with LCA CPPR credit. Small designs only.
[[nodiscard]] std::vector<double> brute_force_hold_slacks(
    const timing::TimingGraph& graph, const timing::Constraints& constraints,
    const timing::ArcDelays& delays);

}  // namespace insta::ref
