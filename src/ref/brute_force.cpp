#include "ref/brute_force.hpp"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "timing/clock.hpp"
#include "util/check.hpp"

namespace insta::ref {

using netlist::PinId;
using netlist::RiseFall;
using timing::ArcId;
using timing::ArcKind;
using timing::ArcRecord;
using timing::ArcSense;
using timing::EndpointId;
using timing::StartpointId;

namespace {

struct Walker {
  const timing::TimingGraph& graph;
  const timing::Constraints& cx;
  const timing::ArcDelays& delays;
  StartpointId sp = timing::kNullStartpoint;
  // best corner arrival per (endpoint, startpoint)
  std::unordered_map<std::uint64_t, double>& best;
  bool early = false;  ///< track minima of mu - nsigma*sigma instead

  static std::uint64_t key(EndpointId ep, StartpointId sp) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ep)) << 32) |
           static_cast<std::uint32_t>(sp);
  }

  void dfs(PinId pin, RiseFall rf, double mu, double sig2) {
    const EndpointId ep = graph.endpoint_of_pin(pin);
    if (ep != timing::kNullEndpoint) {
      const double corner =
          mu + (early ? -1.0 : 1.0) * cx.nsigma * std::sqrt(sig2);
      auto [it, inserted] = best.try_emplace(key(ep, sp), corner);
      if (!inserted && (early ? corner < it->second : corner > it->second)) {
        it->second = corner;
      }
    }
    for (const ArcId aid : graph.fanout(pin)) {
      const ArcRecord& a = graph.arc(aid);
      const RiseFall crf =
          (a.sense == ArcSense::kPositive) ? rf : netlist::opposite(rf);
      const int crfi = netlist::rf_index(crf);
      const double amu = delays.mu[crfi][static_cast<std::size_t>(aid)];
      const double asig = delays.sigma[crfi][static_cast<std::size_t>(aid)];
      dfs(a.to, crf, mu + amu, sig2 + asig * asig);
    }
  }
};

}  // namespace

namespace {

/// Shared path enumeration: fills per-(ep, sp) best corners (late or early).
std::unordered_map<std::uint64_t, double> enumerate_corners(
    const timing::TimingGraph& graph, const timing::Constraints& cx,
    const timing::ArcDelays& delays, const timing::ClockAnalysis& clock,
    bool early) {
  std::unordered_map<std::uint64_t, double> best;
  for (std::size_t s = 0; s < graph.startpoints().size(); ++s) {
    const timing::Startpoint& sp = graph.startpoints()[s];
    Walker w{graph, cx, delays, static_cast<StartpointId>(s), best, early};
    for (const RiseFall rf : netlist::kBothTransitions) {
      double mu = cx.input_arrival_mu;
      double sig2 = cx.input_arrival_sigma * cx.input_arrival_sigma;
      if (sp.clocked) {
        const auto [first, last] = graph.cell_arcs(sp.cell);
        util::check(last - first == 1, "brute force: bad FF launch arcs");
        const int rfi = netlist::rf_index(rf);
        const double lmu = delays.mu[rfi][static_cast<std::size_t>(first)];
        const double lsig = delays.sigma[rfi][static_cast<std::size_t>(first)];
        mu = clock.ck_mu(sp.cell) + lmu;
        sig2 = clock.ck_sig2(sp.cell) + lsig * lsig;
      }
      w.dfs(sp.pin, rf, mu, sig2);
    }
  }
  return best;
}

}  // namespace

std::vector<double> brute_force_hold_slacks(
    const timing::TimingGraph& graph, const timing::Constraints& cx,
    const timing::ArcDelays& delays) {
  const timing::ClockAnalysis clock(graph, delays, cx.nsigma);
  const timing::ExceptionTable exceptions(graph, cx.exceptions);
  const auto best = enumerate_corners(graph, cx, delays, clock, /*early=*/true);

  std::vector<double> slack(graph.endpoints().size(),
                            std::numeric_limits<double>::infinity());
  for (std::size_t e = 0; e < graph.endpoints().size(); ++e) {
    const timing::Endpoint& ep = graph.endpoints()[e];
    if (!ep.clocked) continue;
    const netlist::LibCell& lc = graph.design().libcell_of(ep.cell);
    const double base = clock.ck_mu(ep.cell) +
                        cx.nsigma * std::sqrt(clock.ck_sig2(ep.cell)) +
                        lc.hold;
    for (std::size_t s = 0; s < graph.startpoints().size(); ++s) {
      const auto it = best.find(Walker::key(static_cast<EndpointId>(e),
                                            static_cast<StartpointId>(s)));
      if (it == best.end()) continue;
      if (exceptions.is_false_path(static_cast<StartpointId>(s),
                                   static_cast<EndpointId>(e))) {
        continue;
      }
      const timing::Startpoint& sp = graph.startpoints()[s];
      const netlist::CellId launch = sp.clocked ? sp.cell : netlist::kNullCell;
      const double req = base - clock.credit(launch, ep.cell);
      slack[e] = std::min(slack[e], it->second - req);
    }
  }
  return slack;
}

std::vector<double> brute_force_endpoint_slacks(
    const timing::TimingGraph& graph, const timing::Constraints& cx,
    const timing::ArcDelays& delays) {
  const timing::ClockAnalysis clock(graph, delays, cx.nsigma);
  const timing::ExceptionTable exceptions(graph, cx.exceptions);

  const auto best =
      enumerate_corners(graph, cx, delays, clock, /*early=*/false);

  std::vector<double> slack(graph.endpoints().size(),
                            std::numeric_limits<double>::infinity());
  for (std::size_t e = 0; e < graph.endpoints().size(); ++e) {
    const timing::Endpoint& ep = graph.endpoints()[e];
    double ep_period = cx.clock_period;
    double base = cx.clock_period - cx.output_margin;
    if (ep.clocked) {
      const netlist::LibCell& lc = graph.design().libcell_of(ep.cell);
      ep_period = cx.period_of_domain(clock.domain_of_ff(ep.cell));
      base = ep_period + clock.early_ck(ep.cell) - lc.setup;
    }
    for (std::size_t s = 0; s < graph.startpoints().size(); ++s) {
      const auto it = best.find(Walker::key(static_cast<EndpointId>(e),
                                            static_cast<StartpointId>(s)));
      if (it == best.end()) continue;
      if (exceptions.is_false_path(static_cast<StartpointId>(s),
                                   static_cast<EndpointId>(e))) {
        continue;
      }
      const timing::Startpoint& sp = graph.startpoints()[s];
      const netlist::CellId launch = sp.clocked ? sp.cell : netlist::kNullCell;
      const netlist::CellId capture = ep.clocked ? ep.cell : netlist::kNullCell;
      double req = base + clock.credit(launch, capture) +
                   exceptions.required_shift(static_cast<StartpointId>(s),
                                             static_cast<EndpointId>(e),
                                             ep_period);
      slack[e] = std::min(slack[e], req - it->second);
    }
  }
  return slack;
}

}  // namespace insta::ref
