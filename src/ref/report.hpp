#pragma once

#include <string>
#include <vector>

#include "ref/golden_sta.hpp"

namespace insta::ref {

/// One stage of a traced timing path.
struct PathStage {
  timing::ArcId arc = timing::kNullArc;  ///< kNullArc on the startpoint row
  netlist::PinId pin = netlist::kNullPin;  ///< pin reached by this stage
  netlist::RiseFall rf = netlist::RiseFall::kRise;  ///< transition at pin
  double incr_mu = 0.0;     ///< arc delay mean, ps (0 on the startpoint row)
  double incr_sigma = 0.0;  ///< arc delay sigma, ps
  double arrival = 0.0;     ///< cumulative corner arrival at pin, ps
};

/// A fully resolved worst path of one endpoint: the slack-deciding
/// startpoint, the stage-by-stage trace, and the required-time breakdown.
struct TimingPath {
  timing::EndpointId endpoint = timing::kNullEndpoint;
  timing::StartpointId startpoint = timing::kNullStartpoint;
  bool hold = false;  ///< true for a min-mode (hold) path
  double slack = 0.0;
  double arrival = 0.0;       ///< data arrival corner at the endpoint
  double base_required = 0.0; ///< period + early capture - setup (or PO req);
                              ///< late capture + hold for hold paths
  double cppr_credit = 0.0;
  double exception_shift = 0.0;  ///< multicycle adjustment
  std::vector<PathStage> stages;  ///< startpoint first, endpoint last
};

/// Traces the slack-deciding path of one endpoint through the golden
/// engine's arrival sets. Returns an empty path (no stages) for
/// unconstrained endpoints.
[[nodiscard]] TimingPath trace_worst_path(const GoldenSta& sta,
                                          timing::EndpointId ep);

/// Up to `nworst` distinct paths of one endpoint, ascending by slack: one
/// per (startpoint, transition) arrival entry, i.e. the per-startpoint
/// path diversity the Top-K machinery retains (report_timing -nworst with
/// unique startpoints).
[[nodiscard]] std::vector<TimingPath> trace_paths(const GoldenSta& sta,
                                                  timing::EndpointId ep,
                                                  int nworst);

/// The `count` worst endpoints' paths, sorted by ascending slack — the
/// equivalent of `report_timing -max_paths N` with one path per endpoint.
[[nodiscard]] std::vector<TimingPath> worst_paths(const GoldenSta& sta,
                                                  int count);

/// Traces the hold-slack-deciding (earliest) path of one endpoint. The
/// golden engine must have been built with GoldenOptions::enable_hold.
[[nodiscard]] TimingPath trace_worst_hold_path(const GoldenSta& sta,
                                               timing::EndpointId ep);

/// Renders a path in a PrimeTime-report-like text block.
[[nodiscard]] std::string format_path(const GoldenSta& sta,
                                      const TimingPath& path);

}  // namespace insta::ref
