#include "ref/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace insta::ref {

using netlist::PinId;
using netlist::RiseFall;
using timing::ArcId;
using timing::ArcRecord;
using timing::ArcSense;
using timing::EndpointId;
using timing::StartpointId;
using util::check;

namespace {

/// Backward value-matching walk shared by setup and hold tracing: at each
/// pin, find the fanin arc and parent entry (same startpoint) whose
/// propagation reproduces this entry's (mu, sigma) exactly.
std::vector<PathStage> walk_back(const GoldenSta& sta, PinId pin, RiseFall rf,
                                 double mu, double sigma, StartpointId sp,
                                 bool early) {
  const timing::TimingGraph& g = sta.graph();
  const double nsig =
      (early ? -1.0 : 1.0) * sta.constraints().nsigma;
  auto entries = [&](PinId p, RiseFall r) {
    return early ? sta.early_arrivals(p, r) : sta.arrivals(p, r);
  };
  std::vector<PathStage> reversed;
  for (;;) {
    const auto fanin = g.fanin(pin);
    if (fanin.empty()) break;
    bool found = false;
    for (const ArcId aid : fanin) {
      const ArcRecord& a = g.arc(aid);
      const RiseFall prf =
          (a.sense == ArcSense::kPositive) ? rf : netlist::opposite(rf);
      const int rfi = netlist::rf_index(rf);
      const double amu = sta.delays().mu[rfi][static_cast<std::size_t>(aid)];
      const double asig =
          sta.delays().sigma[rfi][static_cast<std::size_t>(aid)];
      for (const ArrivalEntry& pe : entries(a.from, prf)) {
        if (pe.sp != sp) continue;
        const double want_mu = pe.mu + amu;
        const double want_sig = std::sqrt(pe.sigma * pe.sigma + asig * asig);
        if (std::abs(want_mu - mu) < 1e-6 &&
            std::abs(want_sig - sigma) < 1e-6) {
          PathStage st;
          st.arc = aid;
          st.pin = pin;
          st.rf = rf;
          st.incr_mu = amu;
          st.incr_sigma = asig;
          st.arrival = mu + nsig * sigma;
          reversed.push_back(st);
          pin = a.from;
          rf = prf;
          mu = pe.mu;
          sigma = pe.sigma;
          found = true;
          break;
        }
      }
      if (found) break;
    }
    check(found, "walk_back: no predecessor reproduces the arrival");
  }
  PathStage sp_stage;
  sp_stage.pin = pin;
  sp_stage.rf = rf;
  sp_stage.arrival = mu + nsig * sigma;
  reversed.push_back(sp_stage);
  return {reversed.rbegin(), reversed.rend()};
}

}  // namespace

TimingPath trace_worst_hold_path(const GoldenSta& sta, EndpointId ep_id) {
  const timing::TimingGraph& g = sta.graph();
  const timing::Endpoint& ep = g.endpoints()[static_cast<std::size_t>(ep_id)];
  TimingPath path;
  path.endpoint = ep_id;
  path.hold = true;
  if (!ep.clocked) return path;
  const netlist::LibCell& lc = g.design().libcell_of(ep.cell);
  path.base_required = sta.clock().late_ck(ep.cell) + lc.hold;

  double best = kNoArrivalSlack;
  RiseFall best_rf = RiseFall::kRise;
  ArrivalEntry best_entry;
  double best_credit = 0.0;
  for (const RiseFall rf : netlist::kBothTransitions) {
    for (const ArrivalEntry& e : sta.early_arrivals(ep.pin, rf)) {
      if (sta.exceptions().is_false_path(e.sp, ep_id)) continue;
      const timing::Startpoint& sp =
          g.startpoints()[static_cast<std::size_t>(e.sp)];
      const double credit = sta.clock().credit(
          sp.clocked ? sp.cell : netlist::kNullCell, ep.cell);
      const double slack = e.corner - (path.base_required - credit);
      if (slack < best) {
        best = slack;
        best_rf = rf;
        best_entry = e;
        best_credit = credit;
      }
    }
  }
  if (!std::isfinite(best)) return path;
  path.slack = best;
  path.arrival = best_entry.corner;
  path.cppr_credit = best_credit;
  path.startpoint = best_entry.sp;
  path.stages = walk_back(sta, ep.pin, best_rf, best_entry.mu,
                          best_entry.sigma, best_entry.sp, /*early=*/true);
  return path;
}

TimingPath trace_worst_path(const GoldenSta& sta, EndpointId ep_id) {
  const timing::TimingGraph& g = sta.graph();
  const timing::Constraints& cx = sta.constraints();
  const timing::Endpoint& ep =
      g.endpoints()[static_cast<std::size_t>(ep_id)];

  TimingPath path;
  path.endpoint = ep_id;
  path.base_required = sta.ep_base_required(ep_id);

  // Replicate the slack evaluation to find the deciding (rf, entry) pair.
  const netlist::CellId cap_cell = ep.clocked ? ep.cell : netlist::kNullCell;
  double best = kNoArrivalSlack;
  RiseFall best_rf = RiseFall::kRise;
  ArrivalEntry best_entry;
  double best_credit = 0.0, best_shift = 0.0;
  for (const RiseFall rf : netlist::kBothTransitions) {
    for (const ArrivalEntry& e : sta.arrivals(ep.pin, rf)) {
      if (sta.exceptions().is_false_path(e.sp, ep_id)) continue;
      const timing::Startpoint& sp =
          g.startpoints()[static_cast<std::size_t>(e.sp)];
      const double credit = sta.clock().credit(
          sp.clocked ? sp.cell : netlist::kNullCell, cap_cell);
      const double shift =
          sta.exceptions().required_shift(e.sp, ep_id, cx.clock_period);
      const double slack = path.base_required + credit + shift - e.corner;
      if (slack < best) {
        best = slack;
        best_rf = rf;
        best_entry = e;
        best_credit = credit;
        best_shift = shift;
      }
    }
  }
  if (!std::isfinite(best)) return path;  // unconstrained

  path.slack = best;
  path.arrival = best_entry.corner;
  path.cppr_credit = best_credit;
  path.exception_shift = best_shift;
  path.startpoint = best_entry.sp;

  path.stages = walk_back(sta, ep.pin, best_rf, best_entry.mu,
                          best_entry.sigma, best_entry.sp, /*early=*/false);
  return path;
}

std::vector<TimingPath> trace_paths(const GoldenSta& sta, EndpointId ep_id,
                                    int nworst) {
  const timing::TimingGraph& g = sta.graph();
  const timing::Constraints& cx = sta.constraints();
  const timing::Endpoint& ep = g.endpoints()[static_cast<std::size_t>(ep_id)];
  const double base = sta.ep_base_required(ep_id);
  const netlist::CellId cap_cell = ep.clocked ? ep.cell : netlist::kNullCell;

  struct Cand {
    double slack;
    RiseFall rf;
    ArrivalEntry entry;
    double credit;
    double shift;
  };
  std::vector<Cand> cands;
  for (const RiseFall rf : netlist::kBothTransitions) {
    for (const ArrivalEntry& e : sta.arrivals(ep.pin, rf)) {
      if (sta.exceptions().is_false_path(e.sp, ep_id)) continue;
      const timing::Startpoint& sp =
          g.startpoints()[static_cast<std::size_t>(e.sp)];
      const double credit = sta.clock().credit(
          sp.clocked ? sp.cell : netlist::kNullCell, cap_cell);
      const double shift =
          sta.exceptions().required_shift(e.sp, ep_id, cx.clock_period);
      cands.push_back(Cand{base + credit + shift - e.corner, rf, e, credit,
                           shift});
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.slack < b.slack; });
  if (cands.size() > static_cast<std::size_t>(nworst)) {
    cands.resize(static_cast<std::size_t>(nworst));
  }
  std::vector<TimingPath> paths;
  paths.reserve(cands.size());
  for (const Cand& c : cands) {
    TimingPath path;
    path.endpoint = ep_id;
    path.startpoint = c.entry.sp;
    path.slack = c.slack;
    path.arrival = c.entry.corner;
    path.base_required = base;
    path.cppr_credit = c.credit;
    path.exception_shift = c.shift;
    path.stages = walk_back(sta, ep.pin, c.rf, c.entry.mu, c.entry.sigma,
                            c.entry.sp, /*early=*/false);
    paths.push_back(std::move(path));
  }
  return paths;
}

std::vector<TimingPath> worst_paths(const GoldenSta& sta, int count) {
  const timing::TimingGraph& g = sta.graph();
  std::vector<std::pair<double, EndpointId>> order;
  for (std::size_t e = 0; e < g.endpoints().size(); ++e) {
    const double s = sta.endpoint_slack(static_cast<EndpointId>(e));
    if (std::isfinite(s)) order.emplace_back(s, static_cast<EndpointId>(e));
  }
  std::sort(order.begin(), order.end());
  if (order.size() > static_cast<std::size_t>(count)) {
    order.resize(static_cast<std::size_t>(count));
  }
  std::vector<TimingPath> paths;
  paths.reserve(order.size());
  for (const auto& [slack, ep] : order) {
    paths.push_back(trace_worst_path(sta, ep));
  }
  return paths;
}

std::string format_path(const GoldenSta& sta, const TimingPath& path) {
  const timing::TimingGraph& g = sta.graph();
  const netlist::Design& d = g.design();
  std::string out;
  char line[256];
  if (path.stages.empty()) {
    return "  (unconstrained endpoint)\n";
  }
  const timing::Startpoint& sp =
      g.startpoints()[static_cast<std::size_t>(path.startpoint)];
  const timing::Endpoint& ep =
      g.endpoints()[static_cast<std::size_t>(path.endpoint)];
  std::snprintf(line, sizeof(line), "Startpoint: %s (%s)\n",
                d.cell(sp.cell).name.c_str(),
                sp.clocked ? "FF launch" : "input port");
  out += line;
  std::snprintf(line, sizeof(line), "Endpoint:   %s (%s)\n",
                d.pin_name(ep.pin).c_str(),
                path.hold ? "hold check"
                          : (ep.clocked ? "setup check" : "output port"));
  out += line;
  out += "  point                                        incr    arrival\n";
  for (const PathStage& st : path.stages) {
    std::string what = d.pin_name(st.pin);
    if (st.arc == timing::kNullArc) {
      what += " (startpoint)";
    } else if (g.arc(st.arc).kind == timing::ArcKind::kNet) {
      what += " (net)";
    } else {
      what += " (" + d.libcell_of(g.arc(st.arc).cell).name + ")";
    }
    std::snprintf(line, sizeof(line), "  %-42s %7.2f  %9.2f %c\n",
                  what.c_str(), st.incr_mu, st.arrival,
                  st.rf == RiseFall::kRise ? 'r' : 'f');
    out += line;
  }
  std::snprintf(line, sizeof(line), "  data arrival                                        %10.2f\n",
                path.arrival);
  out += line;
  if (path.hold) {
    std::snprintf(line, sizeof(line),
                  "  required: base %.2f - CPPR credit %.2f = %.2f "
                  "(hold: arrival must exceed required)\n",
                  path.base_required, path.cppr_credit,
                  path.base_required - path.cppr_credit);
  } else {
    std::snprintf(line, sizeof(line),
                  "  required: base %.2f + CPPR credit %.2f + exception %.2f "
                  "= %.2f\n",
                  path.base_required, path.cppr_credit, path.exception_shift,
                  path.base_required + path.cppr_credit +
                      path.exception_shift);
  }
  out += line;
  std::snprintf(line, sizeof(line), "  slack %s %35.2f\n",
                path.slack < 0 ? "(VIOLATED)" : "(MET)     ", path.slack);
  out += line;
  return out;
}

}  // namespace insta::ref
