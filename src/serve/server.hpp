#pragma once

// Socket front end of the TimingService: accepts Unix-domain or local TCP
// connections and speaks the newline-delimited-JSON protocol, one
// Dispatcher (and hence one implicit session) per connection. A connection
// beyond max_connections is not queued: it receives one structured
// "overloaded" error line and is closed (admission control at the edge,
// matching the service's bounded-queue behaviour inside).

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace insta::serve {

struct ServerOptions {
  /// When non-empty, serve on this Unix-domain socket path (unlinked on
  /// start and on stop); otherwise TCP on host:port.
  std::string unix_path;
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Concurrent-connection cap; excess connections are shed.
  int max_connections = 32;
  /// Slow-request log threshold in microseconds (DispatcherOptions::slow_us
  /// of every connection): 0 logs every request, negative disables.
  std::int64_t slow_us = -1;

  [[nodiscard]] std::vector<std::string> validate() const;
};

/// A started server owns one listener thread plus one thread per live
/// connection. All threads are joined by stop() (also run by the
/// destructor). A client shutdown op makes wait() return; the owner then
/// calls stop().
class Server {
 public:
  Server(TimingService& service, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept loop. Throws util::CheckError
  /// on socket/bind/listen failure (message carries errno text).
  void start();

  /// Closes the listener and every live connection, then joins all
  /// threads. Idempotent.
  void stop();

  /// Blocks until a client sends a shutdown op or stop() is called.
  void wait();

  /// Bound TCP port (the ephemeral one when options.port was 0); 0 when
  /// serving a Unix socket.
  [[nodiscard]] int port() const { return bound_port_; }

  /// Printable endpoint ("unix:/path" or "host:port").
  [[nodiscard]] const std::string& endpoint() const { return endpoint_; }

  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

 private:
  void accept_loop();
  void handle_connection(int fd);

  TimingService* service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::string endpoint_;
  std::thread accept_thread_;

  util::Mutex conn_mu_{"serve.conn", util::lockrank::kServerConn};
  std::vector<std::thread> conn_threads_ INSTA_GUARDED_BY(conn_mu_);
  std::vector<int> conn_fds_ INSTA_GUARDED_BY(conn_mu_);
  std::atomic<int> active_connections_{0};

  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_{false};
  util::Mutex wait_mu_{"serve.wait", util::lockrank::kServerWait};
  util::CondVar wait_cv_;
};

}  // namespace insta::serve
