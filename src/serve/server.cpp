#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/protocol.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace insta::serve {

using util::check;

namespace {

std::string errno_text(const std::string& what) {
  // Single-threaded use of the static strerror buffer is fine here: the
  // result is copied into the returned string before any other call.
  return what + ": " + std::strerror(errno);  // NOLINT(concurrency-mt-unsafe)
}

/// Sends the whole buffer, suppressing SIGPIPE; false on any failure.
bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::vector<std::string> ServerOptions::validate() const {
  std::vector<std::string> problems;
  if (unix_path.empty()) {
    if (port < 0 || port > 65535) {
      problems.emplace_back("port must be in [0, 65535]");
    }
    if (host.empty()) problems.emplace_back("host must not be empty");
  } else if (unix_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    problems.emplace_back("unix_path is too long for sockaddr_un");
  }
  if (max_connections < 1) {
    problems.emplace_back("max_connections must be >= 1");
  }
  return problems;
}

Server::Server(TimingService& service, ServerOptions options)
    : service_(&service), options_(std::move(options)) {
  if (const std::vector<std::string> problems = options_.validate();
      !problems.empty()) {
    std::string msg = "Server: invalid ServerOptions:";
    for (const std::string& p : problems) {
      msg += ' ';
      msg += p;
      msg += ';';
    }
    check(false, msg);
  }
}

Server::~Server() { stop(); }

void Server::start() {
  check(listen_fd_ < 0, "Server::start: already started");
  if (!options_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    check(listen_fd_ >= 0, errno_text("socket(AF_UNIX)"));
    ::unlink(options_.unix_path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string msg = errno_text("bind(" + options_.unix_path + ")");
      ::close(listen_fd_);
      listen_fd_ = -1;
      check(false, msg);
    }
    endpoint_ = "unix:" + options_.unix_path;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    check(listen_fd_ >= 0, errno_text("socket(AF_INET)"));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      check(false, "Server: cannot parse host address " + options_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string msg =
          errno_text("bind(" + options_.host + ":" +
                     std::to_string(options_.port) + ")");
      ::close(listen_fd_);
      listen_fd_ = -1;
      check(false, msg);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port_ = static_cast<int>(ntohs(bound.sin_port));
    endpoint_ = options_.host + ":" + std::to_string(bound_port_);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string msg = errno_text("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    check(false, msg);
  }
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  util::log_info("serve: listening on " + endpoint_);
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    if (active_connections_.load(std::memory_order_acquire) >=
        options_.max_connections) {
      // Shed at the edge with one structured reply, mirroring the
      // service's bounded-queue behaviour.
      send_all(fd, error_reply(0, ErrorCode::kOverloaded,
                               "connection limit reached (" +
                                   std::to_string(options_.max_connections) +
                                   ")") +
                       "\n");
      ::close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    const util::LockGuard cl(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Server::handle_connection(int fd) {
  Dispatcher dispatcher(*service_,
                        DispatcherOptions{.slow_us = options_.slow_us});
  std::string buffer;
  char chunk[4096];
  bool shutdown_op = false;
  bool dead_peer = false;
  while (!shutdown_op && !stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed or stop() shut the socket down
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && !shutdown_op;
         nl = buffer.find('\n', start)) {
      const std::string_view line(buffer.data() + start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;  // tolerate keep-alive blank lines
      const std::string reply = dispatcher.dispatch(line, &shutdown_op);
      if (!send_all(fd, reply + "\n") && !shutdown_op) {
        // Peer is gone; drop the rest of the buffered input.
        start = buffer.size();
        shutdown_op = true;  // reuse the flag to leave the recv loop
        dead_peer = true;
        break;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
  active_connections_.fetch_sub(1, std::memory_order_acq_rel);
  {
    const util::LockGuard cl(conn_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  if (shutdown_op && !dead_peer) {
    shutdown_.store(true, std::memory_order_release);
    // Lock/unlock wait_mu_ before notifying so a waiter between its
    // predicate check and its block cannot miss the wakeup.
    {
      const util::LockGuard wl(wait_mu_);
    }
    wait_cv_.notify_all();
  }
}

void Server::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Second caller: still wait for the threads if the first stop() is
    // somehow incomplete (idempotence for ~Server after explicit stop()).
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    const util::LockGuard cl(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Connection threads observe the shutdown via recv() returning and
  // remove themselves; joining outside conn_mu_ would race the vector, so
  // move it out first.
  std::vector<std::thread> threads;
  {
    const util::LockGuard cl(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  {
    const util::LockGuard wl(wait_mu_);
  }
  wait_cv_.notify_all();
}

void Server::wait() {
  util::UniqueLock wl(wait_mu_);
  // Predicate reads only atomics, safe for the lambda-blind analysis.
  wait_cv_.wait(wl, [this] {
    return shutdown_.load(std::memory_order_acquire) ||
           stopping_.load(std::memory_order_acquire);
  });
}

}  // namespace insta::serve
