#pragma once

// The newline-delimited-JSON wire protocol of the timing-query service.
//
// One request per line, one reply line per request, in order:
//
//   -> {"id": 1, "op": "summary"}
//   <- {"id": 1, "ok": true, "result": {"version": 3, "setup": {...}}}
//   -> {"id": 2, "op": "whatif", "scenarios": [{"deltas": [{"arc": 7,
//        "mu": [1.5, 1.5]}]}]}
//   <- {"id": 2, "ok": true, "result": {"version": 3, "results": [...]}}
//   -> {"id": 3, "op": "nope"}
//   <- {"id": 3, "ok": false, "error": {"code": "bad-request",
//        "message": "...", "diagnostics": [...]}}
//
// Ops: ping, info, summary, endpoints (ids | worst N), open, close, whatif,
// begin_edit, annotate, commit, rollback, stats, trace, flightrec, sync,
// delta_stream, shutdown. The scenarios document reuses the `insta_cli
// whatif --scenarios` schema, so one parser (parse_scenarios_json) serves
// both the file-based CLI path and the wire.
//
// Corners (protocol 2): summary, endpoints, and whatif accept an optional
// "corner" member — a corner name or integer id — selecting one corner's
// view; absent means the cross-corner merged view. An unknown corner is
// rejected with code "unknown-corner". info reports the negotiated
// "protocol" version and the engine's "corners" name list; a client may pin
// an older version with {"protocol": 1}, which suppresses the corner
// features for the rest of the connection.
//
// Replication (protocol 3): "sync" returns the engine's full timing state
// as {"generation": G, "snapshot": "<base64 frame>"} (the versioned binary
// codec of src/replica/codec.hpp); "delta_stream" with {"from": F} returns
// the commit deltas after generation F as {"from": F, "generation": G,
// "resync": bool, "deltas": ["<base64 frame>", ...]} — resync true means F
// has fallen out of the retained window (or is ahead of the writer) and the
// client must take a fresh snapshot. stats gains "protocol", "generation",
// "corners", "read_only", "whatif_cache", and (on replicas) "replication".
//
// Request tracing: a request that carries no "id" (or id 0) is assigned a
// fresh positive one by the dispatcher, and the reply echoes whichever id
// was in effect — so every request is addressable in the flight recorder
// and trace flow events whether or not the client numbers its requests.
// Every reply additionally carries a "server_us" object breaking the
// server-side wall time down as {"queue", "batch", "eval", "serialize",
// "total"} microseconds (the first three are nonzero only for whatif, whose
// batching pipeline they describe; the parts never sum to more than total).
//
// Every parse/shape failure is reported as structured analysis::Diagnostic
// entries with stable rule ids ("req-json", "req-shape", "whatif-json",
// "whatif-shape") — the same machinery the linter and Engine::check_deltas
// use — so clients and humans get one diagnostic vocabulary everywhere.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "serve/service.hpp"
#include "telemetry/json.hpp"
#include "timing/types.hpp"

namespace insta::serve {

/// Wire protocol version. Version 2 added the corner dimension: the
/// optional "corner" request field on summary/endpoints/whatif (absent =
/// cross-corner merged view), the "corners"/"protocol" members of info, and
/// the "protocol" request field for version negotiation (a client may pin
/// any version in [1, kProtocolVersion]; version-1 connections are served
/// the pre-corner protocol and corner selections are rejected). Version 3
/// added replication: the "sync" and "delta_stream" ops and the extended
/// stats reply (protocol/generation/corners/read_only/whatif_cache/
/// replication members).
inline constexpr int kProtocolVersion = 3;

/// One decoded request line.
struct Request {
  std::int64_t id = 0;
  std::string op;
  SessionId session = -1;  ///< -1: use the connection's implicit session
  int worst = 0;           ///< endpoints op: N worst-slack endpoints
  int max = 0;             ///< trace/flightrec ops: entry cap (0: default)
  int protocol = 0;        ///< "protocol" negotiation field (0: not present)
  /// delta_stream op: resume after this applied generation ("from" field).
  std::uint64_t from = 0;
  /// Corner selection ("corner" field): a corner name or an integer corner
  /// id. Absent (has_corner false) selects the merged view.
  bool has_corner = false;
  std::int64_t corner_index = -1;  ///< integer form (-1 when named)
  std::string corner;              ///< name form (empty when integer)
  std::vector<std::int64_t> endpoint_ids;  ///< endpoints op: explicit ids
  std::vector<std::vector<timing::ArcDelta>> scenarios;  ///< whatif op
  std::vector<std::string> labels;                       ///< whatif op
  std::vector<timing::ArcDelta> deltas;                  ///< annotate op
};

/// Parses one request line. On failure returns false and adds diagnostics
/// (rule "req-json" for parse errors via the telemetry JSON parser, rule
/// "req-shape" for structural violations).
bool parse_request(std::string_view line, Request& out,
                   analysis::LintReport& report);

/// Parses a scenarios document — {"scenarios": [...]} or a top-level array,
/// each scenario {"label"?: s, "deltas": [{"arc": N, "mu"?: [r, f],
/// "sigma"?: [r, f]}]} — into delta-set lists. Shared by `insta_cli whatif
/// --scenarios` and the wire protocol's whatif op. Returns false and adds
/// diagnostics (rule "whatif-shape") on structural violations; arc-id
/// semantics are left to Engine::check_deltas.
bool parse_scenarios_json(const telemetry::JsonValue& doc,
                          std::vector<std::vector<timing::ArcDelta>>& scenarios,
                          std::vector<std::string>& labels,
                          analysis::LintReport& report);

// ---- reply builders ---------------------------------------------------------

/// {"id": N, "ok": true, "result": <body>}
[[nodiscard]] std::string ok_reply(std::int64_t id, std::string_view body);

/// {"id": N, "ok": false, "error": {"code", "message", "diagnostics"?}}
[[nodiscard]] std::string error_reply(std::int64_t id, ErrorCode code,
                                      std::string_view message,
                                      const analysis::LintReport* diagnostics =
                                          nullptr);

/// {"tns": x, "wns": y, "violations": n} — the whatif-schema summary body.
[[nodiscard]] std::string summary_body(const core::SlackSummary& s);

/// Serializes ServiceStats as a flat JSON object.
[[nodiscard]] std::string stats_body(const ServiceStats& s);

/// Per-connection dispatcher knobs (from ServerOptions / CLI flags).
struct DispatcherOptions {
  /// Requests whose end-to-end dispatch exceeds this many microseconds are
  /// logged as warnings with their server_us breakdown. 0 logs every
  /// request; negative disables the slow-request log.
  std::int64_t slow_us = -1;
};

/// One connection's protocol state machine. dispatch() turns a request
/// line into exactly one reply line (no trailing newline). Sessions the
/// dispatcher opened implicitly or via the open op are closed when it is
/// destroyed, so a dropped connection cannot leak the edit slot.
class Dispatcher {
 public:
  explicit Dispatcher(TimingService& service, DispatcherOptions options = {});
  ~Dispatcher();
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Handles one request line. Sets *shutdown to true when the line was a
  /// shutdown op (the reply must still be delivered before closing).
  [[nodiscard]] std::string dispatch(std::string_view line,
                                     bool* shutdown = nullptr);

 private:
  /// Server-side time accounting of the request being dispatched, merged
  /// into the reply's server_us object.
  struct ReplyTiming {
    std::int64_t queue_us = 0;
    std::int64_t batch_us = 0;
    std::int64_t eval_us = 0;
    std::int64_t serialize_us = 0;
  };

  /// The session a request addresses: its explicit one, or the
  /// connection's implicit session (opened on first use).
  bool resolve_session(const Request& req, SessionId& out, Error& err);
  /// Routes one parsed request to its op handler; the reply lacks the
  /// server_us object, which dispatch() injects.
  [[nodiscard]] std::string dispatch_op(const Request& req, bool* shutdown,
                                        ReplyTiming& timing);

  TimingService* service_;
  DispatcherOptions options_;
  std::vector<SessionId> owned_;
  SessionId implicit_ = -1;
  /// Negotiated protocol version of this connection: kProtocolVersion until
  /// a request carries "protocol", then min(requested, kProtocolVersion).
  int proto_version_ = kProtocolVersion;
};

}  // namespace insta::serve
