#pragma once

// The newline-delimited-JSON wire protocol of the timing-query service.
//
// One request per line, one reply line per request, in order:
//
//   -> {"id": 1, "op": "summary"}
//   <- {"id": 1, "ok": true, "result": {"version": 3, "setup": {...}}}
//   -> {"id": 2, "op": "whatif", "scenarios": [{"deltas": [{"arc": 7,
//        "mu": [1.5, 1.5]}]}]}
//   <- {"id": 2, "ok": true, "result": {"version": 3, "results": [...]}}
//   -> {"id": 3, "op": "nope"}
//   <- {"id": 3, "ok": false, "error": {"code": "bad-request",
//        "message": "...", "diagnostics": [...]}}
//
// Ops: ping, info, summary, endpoints (ids | worst N), open, close, whatif,
// begin_edit, annotate, commit, rollback, stats, shutdown. The scenarios
// document reuses the `insta_cli whatif --scenarios` schema, so one parser
// (parse_scenarios_json) serves both the file-based CLI path and the wire.
//
// Every parse/shape failure is reported as structured analysis::Diagnostic
// entries with stable rule ids ("req-json", "req-shape", "whatif-json",
// "whatif-shape") — the same machinery the linter and Engine::check_deltas
// use — so clients and humans get one diagnostic vocabulary everywhere.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "serve/service.hpp"
#include "telemetry/json.hpp"
#include "timing/types.hpp"

namespace insta::serve {

/// One decoded request line.
struct Request {
  std::int64_t id = 0;
  std::string op;
  SessionId session = -1;  ///< -1: use the connection's implicit session
  int worst = 0;           ///< endpoints op: N worst-slack endpoints
  std::vector<std::int64_t> endpoint_ids;  ///< endpoints op: explicit ids
  std::vector<std::vector<timing::ArcDelta>> scenarios;  ///< whatif op
  std::vector<std::string> labels;                       ///< whatif op
  std::vector<timing::ArcDelta> deltas;                  ///< annotate op
};

/// Parses one request line. On failure returns false and adds diagnostics
/// (rule "req-json" for parse errors via the telemetry JSON parser, rule
/// "req-shape" for structural violations).
bool parse_request(std::string_view line, Request& out,
                   analysis::LintReport& report);

/// Parses a scenarios document — {"scenarios": [...]} or a top-level array,
/// each scenario {"label"?: s, "deltas": [{"arc": N, "mu"?: [r, f],
/// "sigma"?: [r, f]}]} — into delta-set lists. Shared by `insta_cli whatif
/// --scenarios` and the wire protocol's whatif op. Returns false and adds
/// diagnostics (rule "whatif-shape") on structural violations; arc-id
/// semantics are left to Engine::check_deltas.
bool parse_scenarios_json(const telemetry::JsonValue& doc,
                          std::vector<std::vector<timing::ArcDelta>>& scenarios,
                          std::vector<std::string>& labels,
                          analysis::LintReport& report);

// ---- reply builders ---------------------------------------------------------

/// {"id": N, "ok": true, "result": <body>}
[[nodiscard]] std::string ok_reply(std::int64_t id, std::string_view body);

/// {"id": N, "ok": false, "error": {"code", "message", "diagnostics"?}}
[[nodiscard]] std::string error_reply(std::int64_t id, ErrorCode code,
                                      std::string_view message,
                                      const analysis::LintReport* diagnostics =
                                          nullptr);

/// {"tns": x, "wns": y, "violations": n} — the whatif-schema summary body.
[[nodiscard]] std::string summary_body(const core::SlackSummary& s);

/// Serializes ServiceStats as a flat JSON object.
[[nodiscard]] std::string stats_body(const ServiceStats& s);

/// One connection's protocol state machine. dispatch() turns a request
/// line into exactly one reply line (no trailing newline). Sessions the
/// dispatcher opened implicitly or via the open op are closed when it is
/// destroyed, so a dropped connection cannot leak the edit slot.
class Dispatcher {
 public:
  explicit Dispatcher(TimingService& service);
  ~Dispatcher();
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Handles one request line. Sets *shutdown to true when the line was a
  /// shutdown op (the reply must still be delivered before closing).
  [[nodiscard]] std::string dispatch(std::string_view line,
                                     bool* shutdown = nullptr);

 private:
  /// The session a request addresses: its explicit one, or the
  /// connection's implicit session (opened on first use).
  bool resolve_session(const Request& req, SessionId& out, Error& err);

  TimingService* service_;
  std::vector<SessionId> owned_;
  SessionId implicit_ = -1;
};

}  // namespace insta::serve
