#include "serve/protocol.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iterator>
#include <numeric>
#include <utility>

#include "replica/codec.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace insta::serve {

using analysis::Diagnostic;
using analysis::LintReport;
using analysis::Severity;
using telemetry::JsonValue;
using timing::ArcDelta;

namespace {

/// Steady-clock nanoseconds for the server_us reply breakdown (raw chrono:
/// the breakdown is protocol behavior and must survive telemetry-off).
std::int64_t proto_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Small numeric op tag for the flight recorder's kAdmit detail word.
std::uint32_t op_tag(const std::string& op) {
  static constexpr const char* kOps[] = {
      "ping",     "info",   "summary",    "endpoints", "open",
      "close",    "whatif", "begin_edit", "annotate",  "commit",
      "rollback", "stats",  "trace",      "flightrec", "shutdown",
      "sync",     "delta_stream"};
  for (std::size_t i = 0; i < std::size(kOps); ++i) {
    if (op == kOps[i]) return static_cast<std::uint32_t>(i + 1);
  }
  return 0;
}

/// Strips the pretty-printer's trailing newline so a standalone telemetry
/// document embeds cleanly as a reply body.
std::string trim_trailing(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == ' ')) s.pop_back();
  return s;
}

void add_error(LintReport& report, const char* rule, std::string message) {
  Diagnostic d;
  d.rule = rule;
  d.severity = Severity::kError;
  d.message = std::move(message);
  report.add(std::move(d));
}

/// Integral-number member fetch; false (with a diagnostic) on wrong type.
bool get_int(const JsonValue& obj, const char* key, std::int64_t& out,
             const char* rule, LintReport& report) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;  // absent is fine; caller keeps the default
  if (!v->is_number() || v->number != std::floor(v->number)) {
    add_error(report, rule,
              std::string("\"") + key + "\" must be an integral number");
    return false;
  }
  out = static_cast<std::int64_t>(v->number);
  return true;
}

/// Parses one {"arc", "mu"?, "sigma"?} delta object.
bool parse_delta(const JsonValue& d, const std::string& where, ArcDelta& out,
                 const char* rule, LintReport& report) {
  if (!d.is_object()) {
    add_error(report, rule, where + " is not an object");
    return false;
  }
  const JsonValue* arc = d.find("arc");
  if (arc == nullptr || !arc->is_number() ||
      arc->number != std::floor(arc->number)) {
    add_error(report, rule, where + " has no integral \"arc\" id");
    return false;
  }
  out.arc = static_cast<timing::ArcId>(arc->number);
  const auto rf_pair = [&](const char* key, std::array<double, 2>& dst) {
    const JsonValue* v = d.find(key);
    if (v == nullptr) return true;
    if (!v->is_array() || v->array.size() != 2 || !v->array[0].is_number() ||
        !v->array[1].is_number()) {
      add_error(report, rule,
                where + "." + key + " must be a [rise, fall] number pair");
      return false;
    }
    dst = {v->array[0].number, v->array[1].number};
    return true;
  };
  return rf_pair("mu", out.mu) && rf_pair("sigma", out.sigma);
}

/// Resolves a request's corner selection against the published corner-name
/// list: the integer form indexes it, the name form scans it. -1 = unknown.
std::int64_t find_corner(const std::vector<std::string>& names,
                         const Request& req) {
  if (req.corner_index >= 0) {
    return req.corner_index < static_cast<std::int64_t>(names.size())
               ? req.corner_index
               : -1;
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == req.corner) return static_cast<std::int64_t>(i);
  }
  return -1;
}

/// Wire spelling of the corner the client asked for, for error messages.
std::string corner_spelling(const Request& req) {
  return req.corner.empty() ? std::to_string(req.corner_index)
                            : "\"" + req.corner + "\"";
}

}  // namespace

bool parse_scenarios_json(const JsonValue& doc,
                          std::vector<std::vector<ArcDelta>>& scenarios,
                          std::vector<std::string>& labels,
                          LintReport& report) {
  constexpr const char* kRule = "whatif-shape";
  const JsonValue* arr = doc.is_array() ? &doc : doc.find("scenarios");
  if (arr == nullptr || !arr->is_array()) {
    add_error(report, kRule,
              "expected a top-level array or {\"scenarios\": [...]}");
    return false;
  }
  bool ok = true;
  for (std::size_t i = 0; i < arr->array.size(); ++i) {
    const JsonValue& s = arr->array[i];
    const std::string where = "scenario " + std::to_string(i);
    if (!s.is_object()) {
      add_error(report, kRule, where + " is not an object");
      ok = false;
      continue;
    }
    const JsonValue* label = s.find("label");
    labels.push_back(label != nullptr && label->is_string()
                         ? label->string
                         : "scenario-" + std::to_string(i));
    const JsonValue* deltas = s.find("deltas");
    if (deltas == nullptr || !deltas->is_array()) {
      add_error(report, kRule, where + " has no deltas array");
      ok = false;
      continue;
    }
    std::vector<ArcDelta> ds;
    ds.reserve(deltas->array.size());
    for (std::size_t j = 0; j < deltas->array.size(); ++j) {
      ArcDelta ad;
      if (parse_delta(deltas->array[j],
                      where + " delta " + std::to_string(j), ad, kRule,
                      report)) {
        ds.push_back(ad);
      } else {
        ok = false;
      }
    }
    scenarios.push_back(std::move(ds));
  }
  return ok;
}

bool parse_request(std::string_view line, Request& out, LintReport& report) {
  JsonValue doc;
  std::string error;
  if (!telemetry::json_parse(line, doc, error)) {
    add_error(report, "req-json", "request is not valid JSON: " + error);
    return false;
  }
  constexpr const char* kRule = "req-shape";
  if (!doc.is_object()) {
    add_error(report, kRule, "request must be a JSON object");
    return false;
  }
  std::int64_t id = 0;
  if (!get_int(doc, "id", id, kRule, report)) return false;
  out.id = id;
  const JsonValue* op = doc.find("op");
  if (op == nullptr || !op->is_string() || op->string.empty()) {
    add_error(report, kRule, "request has no \"op\" string");
    return false;
  }
  out.op = op->string;
  std::int64_t session = -1;
  if (!get_int(doc, "session", session, kRule, report)) return false;
  out.session = session;
  std::int64_t worst = 0;
  if (!get_int(doc, "worst", worst, kRule, report)) return false;
  if (worst < 0) {
    add_error(report, kRule, "\"worst\" must be >= 0");
    return false;
  }
  out.worst = static_cast<int>(worst);
  std::int64_t max = 0;
  if (!get_int(doc, "max", max, kRule, report)) return false;
  if (max < 0) {
    add_error(report, kRule, "\"max\" must be >= 0");
    return false;
  }
  out.max = static_cast<int>(max);
  std::int64_t protocol = 0;
  if (!get_int(doc, "protocol", protocol, kRule, report)) return false;
  if (doc.find("protocol") != nullptr && protocol < 1) {
    add_error(report, kRule, "\"protocol\" must be >= 1");
    return false;
  }
  out.protocol = static_cast<int>(protocol);
  std::int64_t from = 0;
  if (!get_int(doc, "from", from, kRule, report)) return false;
  if (from < 0) {
    add_error(report, kRule, "\"from\" must be >= 0");
    return false;
  }
  out.from = static_cast<std::uint64_t>(from);

  if (const JsonValue* corner = doc.find("corner"); corner != nullptr) {
    if (corner->is_string()) {
      out.has_corner = true;
      out.corner = corner->string;
    } else if (corner->is_number() &&
               corner->number == std::floor(corner->number) &&
               corner->number >= 0) {
      out.has_corner = true;
      out.corner_index = static_cast<std::int64_t>(corner->number);
    } else {
      add_error(report, kRule,
                "\"corner\" must be a corner name or a corner id >= 0");
      return false;
    }
  }

  if (const JsonValue* ids = doc.find("ids"); ids != nullptr) {
    if (!ids->is_array()) {
      add_error(report, kRule, "\"ids\" must be an array");
      return false;
    }
    for (std::size_t i = 0; i < ids->array.size(); ++i) {
      const JsonValue& v = ids->array[i];
      if (!v.is_number() || v.number != std::floor(v.number)) {
        add_error(report, kRule,
                  "ids[" + std::to_string(i) + "] must be an integral number");
        return false;
      }
      out.endpoint_ids.push_back(static_cast<std::int64_t>(v.number));
    }
  }

  if (const JsonValue* scen = doc.find("scenarios"); scen != nullptr) {
    if (!parse_scenarios_json(*scen, out.scenarios, out.labels, report)) {
      return false;
    }
  }

  if (const JsonValue* deltas = doc.find("deltas"); deltas != nullptr) {
    if (!deltas->is_array()) {
      add_error(report, kRule, "\"deltas\" must be an array");
      return false;
    }
    for (std::size_t j = 0; j < deltas->array.size(); ++j) {
      ArcDelta ad;
      if (!parse_delta(deltas->array[j], "delta " + std::to_string(j), ad,
                       kRule, report)) {
        return false;
      }
      out.deltas.push_back(ad);
    }
  }
  return true;
}

// ---- reply builders ---------------------------------------------------------

std::string ok_reply(std::int64_t id, std::string_view body) {
  std::string s = "{\"id\": " + std::to_string(id) + ", \"ok\": true";
  if (!body.empty()) {
    s += ", \"result\": ";
    s += body;
  }
  s += "}";
  return s;
}

std::string error_reply(std::int64_t id, ErrorCode code,
                        std::string_view message,
                        const LintReport* diagnostics) {
  std::string s = "{\"id\": " + std::to_string(id) +
                  ", \"ok\": false, \"error\": {\"code\": \"" +
                  error_code_name(code) + "\", \"message\": \"" +
                  telemetry::json_escape(message) + "\"";
  if (diagnostics != nullptr && !diagnostics->empty()) {
    s += ", \"diagnostics\": [";
    bool first = true;
    for (const Diagnostic& d : diagnostics->diagnostics()) {
      if (!first) s += ", ";
      first = false;
      s += "{\"rule\": \"" + telemetry::json_escape(d.rule) +
           "\", \"severity\": \"" + analysis::severity_name(d.severity) +
           "\", \"message\": \"" + telemetry::json_escape(d.message) + "\"}";
    }
    s += "]";
  }
  s += "}}";
  return s;
}

std::string summary_body(const core::SlackSummary& s) {
  return "{\"tns\": " + telemetry::json_number(s.tns) +
         ", \"wns\": " + telemetry::json_number(s.wns) +
         ", \"violations\": " + std::to_string(s.violations) + "}";
}

std::string stats_body(const ServiceStats& s) {
  return "{\"sessions_opened\": " + std::to_string(s.sessions_opened) +
         ", \"whatif_requests\": " + std::to_string(s.whatif_requests) +
         ", \"whatif_scenarios\": " + std::to_string(s.whatif_scenarios) +
         ", \"batches\": " + std::to_string(s.batches) +
         ", \"max_batch_occupancy\": " +
         std::to_string(s.max_batch_occupancy) +
         ", \"shed\": " + std::to_string(s.shed) +
         ", \"commits\": " + std::to_string(s.commits) +
         ", \"rollbacks\": " + std::to_string(s.rollbacks) +
         ", \"snapshots_published\": " +
         std::to_string(s.snapshots_published) + "}";
}

// ---- dispatcher -------------------------------------------------------------

Dispatcher::Dispatcher(TimingService& service, DispatcherOptions options)
    : service_(&service), options_(options) {}

Dispatcher::~Dispatcher() {
  // Close everything this connection opened; an in-flight request on the
  // session cannot exist here (the connection thread is the one request
  // path), but close defensively and ignore failures.
  for (const SessionId sid : owned_) {
    (void)service_->close_session(sid);
  }
}

bool Dispatcher::resolve_session(const Request& req, SessionId& out,
                                 Error& err) {
  if (req.session >= 0) {
    out = req.session;
    return true;
  }
  if (implicit_ < 0) {
    err = service_->open_session(implicit_);
    if (!err.ok()) return false;
    owned_.push_back(implicit_);
  }
  out = implicit_;
  return true;
}

std::string Dispatcher::dispatch(std::string_view line, bool* shutdown) {
  const std::int64_t t0 = proto_now_ns();
  Request req;
  LintReport report;
  const bool parsed = parse_request(line, req, report);
  // Every request gets a traceable identity: a client-supplied nonzero id
  // is used verbatim, anything else (absent, 0, or an unparseable line) is
  // assigned a fresh server-generated id that the reply echoes.
  if (req.id == 0) req.id = static_cast<std::int64_t>(next_request_id());
  telemetry::FlightRecorder::global().record(
      telemetry::FlightEventType::kAdmit, static_cast<std::uint64_t>(req.id),
      0, op_tag(req.op));

  ReplyTiming timing;
  std::string reply =
      parsed ? dispatch_op(req, shutdown, timing)
             : error_reply(req.id, ErrorCode::kBadRequest, "malformed request",
                           &report);

  // Inject the server_us breakdown as a top-level reply member (every
  // reply builder ends its object with '}').
  const std::int64_t total_us = (proto_now_ns() - t0) / 1000;
  std::string breakdown =
      "\"queue\": " + std::to_string(timing.queue_us) +
      ", \"batch\": " + std::to_string(timing.batch_us) +
      ", \"eval\": " + std::to_string(timing.eval_us) +
      ", \"serialize\": " + std::to_string(timing.serialize_us) +
      ", \"total\": " + std::to_string(total_us);
  reply.pop_back();
  reply += ", \"server_us\": {" + breakdown + "}}";

  if (options_.slow_us >= 0 && total_us >= options_.slow_us) {
    util::log_warn("serve: slow request id=" + std::to_string(req.id) +
                   " op=" + (req.op.empty() ? "?" : req.op) + " server_us={" +
                   breakdown + "}");
  }
  return reply;
}

std::string Dispatcher::dispatch_op(const Request& req, bool* shutdown,
                                    ReplyTiming& timing) {
  const std::string& op = req.op;

  // Version negotiation: a request carrying "protocol" pins the connection
  // to min(requested, kProtocolVersion) from this request on (a client
  // asking for a newer version than the server speaks gets the server's).
  if (req.protocol > 0) {
    proto_version_ = std::min(req.protocol, kProtocolVersion);
  }
  // Corner selection is a version-2 feature; resolve it once for the ops
  // that accept it. ci stays -1 for the merged view.
  std::int64_t ci = -1;
  if (req.has_corner &&
      (op == "summary" || op == "endpoints" || op == "whatif" ||
       op == "info")) {
    if (proto_version_ < 2) {
      return error_reply(req.id, ErrorCode::kBadRequest,
                         "\"corner\" requires protocol >= 2 (connection "
                         "negotiated " +
                             std::to_string(proto_version_) + ")");
    }
    const auto snap = service_->snapshot();
    ci = find_corner(snap->corners, req);
    if (ci < 0) {
      return error_reply(req.id, ErrorCode::kUnknownCorner,
                         "unknown corner " + corner_spelling(req) +
                             " (engine has " +
                             std::to_string(snap->corners.size()) +
                             " corners)");
    }
  }

  if (op == "ping") return ok_reply(req.id, "{\"pong\": true}");

  if (op == "shutdown") {
    if (shutdown != nullptr) *shutdown = true;
    return ok_reply(req.id, "{\"shutting_down\": true}");
  }

  if (op == "info") {
    const core::Engine& e = service_->engine();
    const auto snap = service_->snapshot();
    std::string body =
        "{\"version\": " + std::to_string(snap->version) +
        ", \"endpoints\": " + std::to_string(snap->slack.size()) +
        ", \"arcs\": " + std::to_string(e.graph().num_arcs()) +
        ", \"hold\": " + (snap->has_hold ? "true" : "false") +
        ", \"protocol\": " + std::to_string(proto_version_);
    if (proto_version_ >= 2) {
      body += ", \"corners\": [";
      for (std::size_t c = 0; c < snap->corners.size(); ++c) {
        if (c != 0) body += ", ";
        body += "\"" + telemetry::json_escape(snap->corners[c]) + "\"";
      }
      body += "]";
    }
    body += "}";
    return ok_reply(req.id, body);
  }

  if (op == "summary") {
    const auto snap = service_->snapshot();
    const core::SlackSummary& setup =
        ci >= 0 ? snap->setup_by_corner[static_cast<std::size_t>(ci)]
                : snap->setup;
    std::string body = "{\"version\": " + std::to_string(snap->version);
    if (ci >= 0) {
      body += ", \"corner\": \"" +
              telemetry::json_escape(
                  snap->corners[static_cast<std::size_t>(ci)]) +
              "\"";
    }
    body += ", \"setup\": " + summary_body(setup);
    if (snap->has_hold) {
      const core::SlackSummary& hold =
          ci >= 0 ? snap->hold_by_corner[static_cast<std::size_t>(ci)]
                  : snap->hold;
      body += ", \"hold\": " + summary_body(hold);
    }
    body += "}";
    return ok_reply(req.id, body);
  }

  if (op == "endpoints") {
    const auto snap = service_->snapshot();
    // The merged plane, or the selected corner's slice of the corner-major
    // per-endpoint arrays.
    const std::size_t n = snap->slack.size();
    const float* slack = snap->slack.data();
    const float* hold_slack =
        snap->has_hold ? snap->hold_slack.data() : nullptr;
    if (ci >= 0) {
      const auto off = static_cast<std::size_t>(ci) * n;
      slack = snap->slack_by_corner.data() + off;
      if (snap->has_hold) {
        hold_slack = snap->hold_slack_by_corner.data() + off;
      }
    }
    std::vector<std::int64_t> ids;
    if (req.worst > 0) {
      // N worst-slack endpoints of the selected view (ascending slack).
      std::vector<std::int64_t> order(n);
      std::iota(order.begin(), order.end(), std::int64_t{0});
      const auto cap = std::min<std::size_t>(
          static_cast<std::size_t>(req.worst), order.size());
      std::partial_sort(order.begin(),
                        order.begin() + static_cast<std::ptrdiff_t>(cap),
                        order.end(), [&](std::int64_t a, std::int64_t b) {
                          return slack[static_cast<std::size_t>(a)] <
                                 slack[static_cast<std::size_t>(b)];
                        });
      order.resize(cap);
      ids = std::move(order);
    } else {
      for (const std::int64_t id : req.endpoint_ids) {
        if (id < 0 || static_cast<std::size_t>(id) >= n) {
          return error_reply(req.id, ErrorCode::kBadRequest,
                             "endpoint id " + std::to_string(id) +
                                 " out of range [0, " + std::to_string(n) +
                                 ")");
        }
        ids.push_back(id);
      }
    }
    std::string body = "{\"version\": " + std::to_string(snap->version);
    if (ci >= 0) {
      body += ", \"corner\": \"" +
              telemetry::json_escape(
                  snap->corners[static_cast<std::size_t>(ci)]) +
              "\"";
    }
    body += ", \"endpoints\": [";
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const auto e = static_cast<std::size_t>(ids[i]);
      if (i != 0) body += ", ";
      body += "{\"ep\": " + std::to_string(ids[i]) + ", \"slack\": " +
              telemetry::json_number(static_cast<double>(slack[e]));
      if (snap->has_hold) {
        body += ", \"hold_slack\": " +
                telemetry::json_number(static_cast<double>(hold_slack[e]));
      }
      body += "}";
    }
    body += "]}";
    return ok_reply(req.id, body);
  }

  if (op == "open") {
    SessionId sid = -1;
    const Error err = service_->open_session(sid);
    if (!err.ok()) return error_reply(req.id, err.code, err.message);
    owned_.push_back(sid);
    return ok_reply(req.id, "{\"session\": " + std::to_string(sid) + "}");
  }

  if (op == "close") {
    SessionId sid = -1;
    Error err;
    if (!resolve_session(req, sid, err)) {
      return error_reply(req.id, err.code, err.message);
    }
    err = service_->close_session(sid);
    if (!err.ok()) return error_reply(req.id, err.code, err.message);
    owned_.erase(std::remove(owned_.begin(), owned_.end(), sid),
                 owned_.end());
    if (sid == implicit_) implicit_ = -1;
    return ok_reply(req.id, "{\"closed\": " + std::to_string(sid) + "}");
  }

  if (op == "whatif") {
    SessionId sid = -1;
    Error err;
    if (!resolve_session(req, sid, err)) {
      return error_reply(req.id, err.code, err.message);
    }
    TimingService::WhatifReply reply;
    // The resolved corner shapes only the reply view and the cache key; it
    // never changes what the evaluator computes.
    err = service_->whatif(sid, req.scenarios, reply,
                           static_cast<std::uint64_t>(req.id),
                           ci >= 0 ? static_cast<core::CornerId>(ci)
                                   : core::kAllCorners);
    timing.queue_us = reply.timing.queue_us;
    timing.batch_us = reply.timing.batch_us;
    timing.eval_us = reply.timing.eval_us;
    if (!err.ok()) {
      return error_reply(req.id, err.code, err.message, &err.diagnostics);
    }
    const std::int64_t ser0 = proto_now_ns();
    std::string body = "{\"version\": " + std::to_string(reply.version);
    if (ci >= 0) {
      body += ", \"corner\": \"" +
              telemetry::json_escape(service_->engine()
                                         .corners()[static_cast<std::size_t>(
                                             ci)]
                                         .name) +
              "\"";
    }
    body += ", \"results\": [";
    for (std::size_t i = 0; i < reply.results.size(); ++i) {
      const core::ScenarioResult& r = reply.results[i];
      if (i != 0) body += ", ";
      const core::SlackSummary& setup =
          ci >= 0 ? r.setup_by_corner[static_cast<std::size_t>(ci)]
                  : r.setup;
      body += "{\"label\": \"" + telemetry::json_escape(req.labels[i]) +
              "\", \"setup\": " + summary_body(setup);
      if (service_->engine().options().enable_hold) {
        const core::SlackSummary& hold =
            ci >= 0 ? r.hold_by_corner[static_cast<std::size_t>(ci)]
                    : r.hold;
        body += ", \"hold\": " + summary_body(hold);
      }
      body += ", \"frontier_pins\": " + std::to_string(r.frontier_pins) +
              ", \"early_terminations\": " +
              std::to_string(r.early_terminations) +
              ", \"endpoints_evaluated\": " +
              std::to_string(r.endpoints_evaluated) +
              ", \"overlay_bytes\": " + std::to_string(r.overlay_bytes);
      if (!r.endpoint_changes.empty()) {
        body += ", \"endpoint_changes\": [";
        for (std::size_t c = 0; c < r.endpoint_changes.size(); ++c) {
          const core::EndpointSlackChange& ch = r.endpoint_changes[c];
          if (c != 0) body += ", ";
          body += "{\"ep\": " + std::to_string(ch.ep) + ", \"setup\": " +
                  telemetry::json_number(static_cast<double>(ch.setup)) +
                  ", \"hold\": " +
                  telemetry::json_number(static_cast<double>(ch.hold)) + "}";
        }
        body += "]";
      }
      body += "}";
    }
    body += "]}";
    std::string out = ok_reply(req.id, body);
    timing.serialize_us = (proto_now_ns() - ser0) / 1000;
    return out;
  }

  if (op == "begin_edit" || op == "annotate" || op == "commit" ||
      op == "rollback") {
    SessionId sid = -1;
    Error err;
    if (!resolve_session(req, sid, err)) {
      return error_reply(req.id, err.code, err.message);
    }
    if (op == "begin_edit") {
      err = service_->begin_edit(sid);
      if (!err.ok()) return error_reply(req.id, err.code, err.message);
      return ok_reply(req.id, "{\"editing\": true}");
    }
    if (op == "annotate") {
      err = service_->annotate(sid, req.deltas);
      if (!err.ok()) {
        return error_reply(req.id, err.code, err.message, &err.diagnostics);
      }
      return ok_reply(
          req.id, "{\"buffered\": " + std::to_string(req.deltas.size()) + "}");
    }
    if (op == "commit") {
      TimingService::CommitReply reply;
      err = service_->commit(sid, reply);
      if (!err.ok()) return error_reply(req.id, err.code, err.message);
      std::string body = "{\"version\": " + std::to_string(reply.version) +
                         ", \"setup\": " + summary_body(reply.setup);
      if (service_->engine().options().enable_hold) {
        body += ", \"hold\": " + summary_body(reply.hold);
      }
      body += "}";
      return ok_reply(req.id, body);
    }
    err = service_->rollback(sid);
    if (!err.ok()) return error_reply(req.id, err.code, err.message);
    return ok_reply(req.id, "{\"rolled_back\": true}");
  }

  if (op == "stats") {
    // stats_body plus the live fields a polling dashboard (insta_cli top)
    // needs: instantaneous queue depth / session count and the what-if
    // latency distribution (zeros in telemetry-off builds).
    std::string body = stats_body(service_->stats());
    body.pop_back();
    body += ", \"queue_depth\": " + std::to_string(service_->queue_depth()) +
            ", \"open_sessions\": " +
            std::to_string(service_->open_sessions());
    const telemetry::MetricsSnapshot snap =
        telemetry::MetricsRegistry::global().snapshot();
    const auto it = snap.histograms.find("serve.whatif_latency_us");
    const telemetry::HistogramSnapshot lat =
        it == snap.histograms.end() ? telemetry::HistogramSnapshot{}
                                    : it->second;
    body += ", \"latency_us\": {\"count\": " + std::to_string(lat.count) +
            ", \"p50\": " + telemetry::json_number(lat.percentile(0.50)) +
            ", \"p95\": " + telemetry::json_number(lat.percentile(0.95)) +
            ", \"p99\": " + telemetry::json_number(lat.percentile(0.99)) +
            ", \"max\": " + telemetry::json_number(lat.max) + "}";
    // Deployment identity: the negotiated protocol, the committed engine
    // generation, and the corner list, so a fleet orchestrator can tell
    // from one stats poll whether a replica has converged.
    const auto ssnap = service_->snapshot();
    body += ", \"protocol\": " + std::to_string(proto_version_) +
            ", \"generation\": " + std::to_string(ssnap->version) +
            ", \"corners\": [";
    for (std::size_t c = 0; c < ssnap->corners.size(); ++c) {
      if (c != 0) body += ", ";
      body += "\"" + telemetry::json_escape(ssnap->corners[c]) + "\"";
    }
    body += std::string("], \"read_only\": ") +
            (service_->options().read_only ? "true" : "false");
    const replica::WhatifCacheStats cs = service_->cache_stats();
    body += ", \"whatif_cache\": {\"hits\": " + std::to_string(cs.hits) +
            ", \"misses\": " + std::to_string(cs.misses) +
            ", \"evictions\": " + std::to_string(cs.evictions) +
            ", \"entries\": " + std::to_string(cs.entries) + "}";
    if (const replica::ReplicationInfo* ri = service_->replication_info();
        ri != nullptr) {
      body += ", \"replication\": {\"applied_deltas\": " +
              std::to_string(ri->applied_deltas.load()) +
              ", \"full_syncs\": " + std::to_string(ri->full_syncs.load()) +
              ", \"last_lag_us\": " + std::to_string(ri->last_lag_us.load()) +
              ", \"upstream_generation\": " +
              std::to_string(ri->upstream_generation.load()) +
              std::string(", \"connected\": ") +
              (ri->connected.load() ? "true" : "false") + "}";
    }
    body += "}";
    return ok_reply(req.id, body);
  }

  if (op == "sync") {
    // Full-state bootstrap: the complete timing state at one committed
    // generation, as one base64-wrapped binary frame.
    if (proto_version_ < 3) {
      return error_reply(req.id, ErrorCode::kBadRequest,
                         "\"sync\" requires protocol >= 3 (connection "
                         "negotiated " +
                             std::to_string(proto_version_) + ")");
    }
    const std::int64_t ser0 = proto_now_ns();
    const core::EngineState st = service_->export_state();
    const std::string frame = replica::encode_snapshot(st);
    std::string body = "{\"generation\": " + std::to_string(st.generation) +
                       ", \"snapshot\": \"" + replica::base64_encode(frame) +
                       "\"}";
    std::string out = ok_reply(req.id, body);
    timing.serialize_us = (proto_now_ns() - ser0) / 1000;
    return out;
  }

  if (op == "delta_stream") {
    if (proto_version_ < 3) {
      return error_reply(req.id, ErrorCode::kBadRequest,
                         "\"delta_stream\" requires protocol >= 3 "
                         "(connection negotiated " +
                             std::to_string(proto_version_) + ")");
    }
    const std::int64_t ser0 = proto_now_ns();
    std::vector<replica::CommitRecord> recs;
    const bool in_window = service_->delta_log().since(req.from, recs);
    std::string body =
        "{\"from\": " + std::to_string(req.from) + ", \"generation\": " +
        std::to_string(service_->delta_log().latest()) +
        std::string(", \"resync\": ") + (in_window ? "false" : "true") +
        ", \"deltas\": [";
    for (std::size_t i = 0; i < recs.size(); ++i) {
      if (i != 0) body += ", ";
      body += "\"" + replica::base64_encode(replica::encode_delta(recs[i])) +
              "\"";
    }
    body += "]}";
    std::string out = ok_reply(req.id, body);
    timing.serialize_us = (proto_now_ns() - ser0) / 1000;
    return out;
  }

  if (op == "trace") {
    // Newest completed spans, embedded verbatim from Tracer::spans_json;
    // "max" caps the span count (default 64).
    const auto cap = static_cast<std::size_t>(req.max > 0 ? req.max : 64);
    const telemetry::Tracer& tracer = telemetry::Tracer::global();
    std::string body = trim_trailing(tracer.spans_json(cap));
    body.pop_back();
    body += std::string(", \"enabled\": ") +
            (tracer.enabled() ? "true" : "false") + "}";
    return ok_reply(req.id, body);
  }

  if (op == "flightrec") {
    // Newest flight-recorder lifecycle events ("max" caps the count,
    // default 64); the result validates as a flight-recorder document.
    const auto cap = static_cast<std::size_t>(req.max > 0 ? req.max : 64);
    return ok_reply(
        req.id,
        trim_trailing(telemetry::FlightRecorder::global().to_json(cap)));
  }

  return error_reply(req.id, ErrorCode::kBadRequest, "unknown op \"" +
                                                         op + "\"");
}

}  // namespace insta::serve
