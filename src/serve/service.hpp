#pragma once

// The timing-query service layer: one Engine, many concurrent clients.
//
// Three traffic classes, three isolation mechanisms:
//
//  * Read queries (summary, endpoint slacks, worst endpoints) never touch
//    the engine. Every commit publishes an immutable TimingSnapshot through
//    an RCU-style pointer swap behind the annotated snap_mu_ capability
//    (util::Mutex; snap_ is INSTA_GUARDED_BY(snap_mu_), so the compiler —
//    not convention — proves the pointer is swapped and copied only inside
//    that tiny critical section, which never contends with the engine
//    lock). Readers copy the current shared_ptr and keep it alive for as
//    long as they like — a reader admitted before a commit keeps seeing
//    its own consistent pre-commit world.
//
//  * Speculative what-if queries from any number of sessions are coalesced
//    by a micro-batcher: the first arrival becomes the collection leader,
//    waits up to ServiceOptions::batch_window_us for co-travellers, and
//    drains the queue into a single ScenarioBatch::evaluate call over the
//    shared baseline (copy-on-write overlays; the engine is never
//    mutated). Collection of the next batch overlaps evaluation of the
//    previous one.
//
//  * Exclusive edit sessions buffer deltas in the service and apply them
//    under Engine::Transaction at commit(), serialized behind every
//    in-flight what-if batch by a shared_mutex. A successful commit
//    re-propagates incrementally and publishes the next snapshot.
//
// Admission control is structural, not advisory: a bounded what-if queue,
// a per-session in-flight cap, and a session-count cap shed excess load
// with structured Error replies (ErrorCode::kOverloaded) instead of
// stalling or growing without bound.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/engine.hpp"
#include "core/scenario_batch.hpp"
#include "replica/delta_log.hpp"
#include "replica/replication_info.hpp"
#include "replica/whatif_cache.hpp"
#include "timing/types.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace insta::serve {

/// Client-visible session handle. Sessions are cheap; a socket connection
/// typically owns one.
using SessionId = std::int64_t;

/// Stable machine-readable error codes of the service (and, spelled via
/// error_code_name(), of the wire protocol).
enum class ErrorCode : std::uint8_t {
  kNone,          ///< success
  kBadRequest,    ///< malformed or semantically invalid request
  kBadSession,    ///< unknown, closed, or wrong-state session
  kOverloaded,    ///< shed by admission control; retry later
  kEditConflict,  ///< another session holds the edit lock
  kUnsupported,   ///< known op not available (e.g. hold on a setup-only engine)
  kUnknownCorner, ///< request named a corner the engine was not built with
  kInternal,      ///< engine-side failure; request-independent
};

/// Wire spelling of a code ("overloaded", "bad-request", ...).
[[nodiscard]] const char* error_code_name(ErrorCode code);

/// Process-wide request-id allocator: returns a fresh positive id per call.
/// The dispatcher stamps every wire request that did not supply its own id,
/// so each request is traceable through the flight recorder and the trace
/// flow events even when the client does not care about ids.
[[nodiscard]] std::uint64_t next_request_id();

/// Structured failure report of one service call. Success is code kNone;
/// everything else carries a message and, for validation failures, the
/// per-delta diagnostics (rule ids "delta-arc-range", ...).
struct Error {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
  analysis::LintReport diagnostics;

  [[nodiscard]] bool ok() const { return code == ErrorCode::kNone; }

  static Error success() { return {}; }
  static Error make(ErrorCode code, std::string message) {
    Error e;
    e.code = code;
    e.message = std::move(message);
    return e;
  }
};

/// Service tuning knobs. Everything here is a trust boundary (CLI flags),
/// so validate() reports every bad field at once, mirroring
/// EngineOptions::validate().
struct ServiceOptions {
  /// How long a what-if collection leader waits for co-travellers before
  /// closing its batch, in microseconds. 0 disables coalescing (every
  /// request evaluates alone).
  int batch_window_us = 200;
  /// Scenario cap of one ScenarioBatch::evaluate call; a drained queue
  /// larger than this evaluates in successive chunks.
  int max_batch = 64;
  /// Bound on queued-but-not-yet-evaluated scenarios across all sessions.
  /// Arrivals beyond it are shed with ErrorCode::kOverloaded.
  int max_queue = 256;
  /// Bound on one session's concurrently outstanding what-if requests.
  int max_inflight_per_session = 8;
  /// Bound on concurrently open sessions.
  int max_sessions = 64;
  /// Also report per-endpoint scenario slacks in what-if replies.
  bool collect_endpoints = false;
  /// Replica mode: begin_edit is rejected with kUnsupported, so clients
  /// cannot mutate a copy that replication would immediately diverge from.
  /// The internal replication apply/import paths are unaffected.
  bool read_only = false;
  /// Capacity of the what-if result cache keyed by (generation, corner,
  /// canonical delta-set hash), consulted before micro-batching. 0 disables
  /// caching.
  int whatif_cache_entries = 256;
  /// Commit-delta history retained for replica catch-up; a replica lagging
  /// more than this many commits falls back to a full snapshot resync.
  int delta_log_capacity = 1024;

  /// One message per invalid field; empty when usable (the TimingService
  /// constructor rejects invalid options with the same messages).
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Immutable published view of the engine's committed timing. version is
/// Engine::generation() at publication; slack vectors are indexed by
/// endpoint id (hold_slack empty unless has_hold).
///
/// setup/hold/slack/hold_slack are the cross-corner MERGED view (identical
/// to corner 0 on a single-corner engine, so pre-MCMM readers are
/// unaffected); the *_by_corner twins carry every corner's data,
/// corner-major (corner c's endpoint e at [c * slack.size() + e]).
struct TimingSnapshot {
  std::uint64_t version = 0;
  bool has_hold = false;
  core::SlackSummary setup;
  core::SlackSummary hold;
  std::vector<float> slack;
  std::vector<float> hold_slack;
  /// Corner names, indexed by CornerId (size >= 1).
  std::vector<std::string> corners;
  std::vector<core::SlackSummary> setup_by_corner;
  /// Empty unless has_hold.
  std::vector<core::SlackSummary> hold_by_corner;
  /// Corner-major per-endpoint slacks, size corners.size() * slack.size().
  std::vector<float> slack_by_corner;
  /// Empty unless has_hold.
  std::vector<float> hold_slack_by_corner;
};

/// Deterministic service counters, independent of the telemetry build
/// (the serve.* metrics mirror these when telemetry is compiled in).
struct ServiceStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t whatif_requests = 0;   ///< admitted requests
  std::uint64_t whatif_scenarios = 0;  ///< scenarios evaluated
  std::uint64_t batches = 0;           ///< ScenarioBatch::evaluate calls
  std::uint64_t max_batch_occupancy = 0;  ///< largest single batch
  std::uint64_t shed = 0;              ///< requests rejected by admission
  std::uint64_t commits = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t snapshots_published = 0;
};

/// The embeddable multi-client front end of one Engine. All public methods
/// are thread-safe; blocking calls (whatif, commit) block only their own
/// caller. The service assumes exclusive ownership of the engine for its
/// lifetime: mutating the engine behind the service's back invalidates the
/// published snapshot.
class TimingService {
 public:
  /// The engine must be timing-clean (construction publishes snapshot v0
  /// from its current state). Throws util::CheckError on invalid options.
  explicit TimingService(core::Engine& engine, ServiceOptions options = {});
  ~TimingService();
  TimingService(const TimingService&) = delete;
  TimingService& operator=(const TimingService&) = delete;

  // ---- sessions -------------------------------------------------------------

  Error open_session(SessionId& out);
  /// Fails with kBadSession while the session has in-flight what-ifs; an
  /// open edit is rolled back.
  Error close_session(SessionId session);

  // ---- reads (lock-free against the published snapshot) ---------------------

  /// The current snapshot. Never null; safe to hold indefinitely.
  [[nodiscard]] std::shared_ptr<const TimingSnapshot> snapshot() const {
    const util::LockGuard sl(snap_mu_);
    return snap_;
  }

  // ---- batched speculative what-ifs -----------------------------------------

  /// Server-side latency breakdown of one what-if request, measured on the
  /// service's own steady clock (filled regardless of the telemetry build).
  struct WhatifTiming {
    std::int64_t queue_us = 0;  ///< enqueue until the leader drained it
    std::int64_t batch_us = 0;  ///< drained until its evaluation began
    std::int64_t eval_us = 0;   ///< inside ScenarioBatch::evaluate
  };

  struct WhatifReply {
    std::uint64_t request_id = 0;  ///< id the batch machinery traced this as
    std::uint64_t version = 0;  ///< snapshot version the batch ran against
    WhatifTiming timing;
    std::vector<core::ScenarioResult> results;  ///< parallel to scenarios
  };

  /// Evaluates the session's scenarios against the shared baseline without
  /// mutating it, coalescing with concurrent sessions' requests. Blocks
  /// until the batch containing the request completes. Results are
  /// bit-identical to sequentially annotating the engine and re-propagating
  /// (ScenarioBatch's structural guarantee).
  ///
  /// `request_id` labels the request in the flight recorder and trace flow
  /// events; 0 allocates one internally (the effective id comes back in
  /// out.request_id either way).
  ///
  /// `corner` is the request's resolved corner selector and participates
  /// only in the what-if cache key (evaluation always covers every corner;
  /// per-corner extraction is the protocol layer's job). kAllCorners (-1)
  /// is the merged/no-selector identity.
  Error whatif(SessionId session,
               const std::vector<std::vector<timing::ArcDelta>>& scenarios,
               WhatifReply& out, std::uint64_t request_id = 0,
               core::CornerId corner = core::kAllCorners);

  // ---- exclusive edits ------------------------------------------------------

  struct CommitReply {
    std::uint64_t version = 0;  ///< version of the newly published snapshot
    /// Cross-corner merged summaries (== corner 0 on single-corner engines).
    core::SlackSummary setup;
    core::SlackSummary hold;  ///< zeros unless the engine runs with hold
  };

  /// Claims the (single) edit slot. Deltas then buffer in the service via
  /// annotate() and hit the engine only inside commit(), under
  /// Engine::Transaction; preview a pending edit with whatif().
  Error begin_edit(SessionId session);
  /// Validates (Engine::check_deltas) and buffers deltas onto the
  /// session's open edit. Validation errors reject the call as a whole.
  Error annotate(SessionId session, std::span<const timing::ArcDelta> deltas);
  /// Applies the buffered deltas transactionally, re-propagates, publishes
  /// the next snapshot, and releases the edit slot.
  Error commit(SessionId session, CommitReply& out);
  /// Discards the buffered deltas and releases the edit slot.
  Error rollback(SessionId session);

  // ---- replication ----------------------------------------------------------

  /// Full mutable-state image of the engine at its committed generation,
  /// taken under shared engine access — the payload of the `sync` verb.
  [[nodiscard]] core::EngineState export_state();

  /// Replica bootstrap / gap recovery: overwrites the engine's timing state
  /// with a writer-exported image and republishes the snapshot. The delta
  /// log is re-seeded at the imported generation. kInternal on a
  /// design/options mismatch.
  Error import_state(const core::EngineState& state);

  /// Replica steady state: applies one writer commit record through the
  /// same Transaction + incremental-pass path the writer ran, so the
  /// replica's post-apply state is byte-identical to the writer's at
  /// rec.generation. Fails with kInternal — without touching the engine —
  /// when rec does not chain onto the current generation (the caller
  /// should full-resync). Permitted on read_only services: this is the
  /// replication channel, not a client edit.
  Error apply_commit(const replica::CommitRecord& rec);

  /// Commit-delta history backing the `delta_stream` verb. Internally
  /// locked; safe from any thread.
  [[nodiscard]] replica::DeltaLog& delta_log() { return delta_log_; }

  /// What-if cache counters (zeros when the cache is disabled).
  [[nodiscard]] replica::WhatifCacheStats cache_stats() const {
    return whatif_cache_.stats();
  }

  /// Wires a Replicator's live telemetry into the `stats` verb; pass the
  /// pointer before serving traffic starts and keep it alive for the
  /// service's lifetime. Null when this process is not a replica.
  void set_replication_info(const replica::ReplicationInfo* info) {
    repl_info_.store(info, std::memory_order_release);
  }
  [[nodiscard]] const replica::ReplicationInfo* replication_info() const {
    return repl_info_.load(std::memory_order_acquire);
  }

  // ---- introspection --------------------------------------------------------

  [[nodiscard]] ServiceStats stats() const;
  /// Scenarios queued but not yet drained by a batch leader (point-in-time,
  /// for live introspection; races benignly with the batcher).
  [[nodiscard]] std::size_t queue_depth() const;
  /// Currently open sessions.
  [[nodiscard]] std::size_t open_sessions() const;
  [[nodiscard]] const ServiceOptions& options() const { return options_; }
  /// Quiescent introspection API: callers (CLI reporting, tests) read the
  /// engine after the concurrent phase has drained, so taking engine_mu_
  /// here would only manufacture contention. The pointee is pt-guarded for
  /// every internal path; this accessor is the documented opt-out.
  [[nodiscard]] const core::Engine& engine() const
      INSTA_NO_THREAD_SAFETY_ANALYSIS {
    return *engine_;
  }

 private:
  /// One queued what-if request, owned by the caller's stack frame for the
  /// duration of whatif().
  struct PendingWhatif {
    const std::vector<std::vector<timing::ArcDelta>>* scenarios = nullptr;
    WhatifReply* reply = nullptr;
    Error error;
    /// Trace/flight-recorder identity of this request (always nonzero once
    /// queued) and its lifecycle timestamps on the steady clock. The
    /// *_ns fields after enqueue_ns are written by the leader before it
    /// marks the request done under queue_mu_, so the owning waiter reads
    /// them ordered by the same release/acquire as `done`.
    std::uint64_t request_id = 0;
    std::int64_t enqueue_ns = 0;
    std::int64_t drained_ns = 0;
    std::int64_t eval_begin_ns = 0;
    std::int64_t eval_end_ns = 0;
    /// Guarded by the service's queue_mu_ (a nested struct cannot name the
    /// outer class's member in an annotation): written by the leader under
    /// queue_mu_, read by the waiter's done_cv_ predicate under queue_mu_.
    bool done = false;
    bool leader = false;
  };

  struct Session {
    bool editing = false;
    int inflight = 0;
    std::vector<timing::ArcDelta> pending;  ///< buffered edit deltas
  };

  /// Rebuilds and atomically publishes the snapshot from the engine's
  /// current state. Caller holds exclusive engine access.
  void publish_snapshot() INSTA_REQUIRES(engine_mu_);
  /// Leader path: collect co-travellers, drain, evaluate, distribute.
  void run_batch_leader(PendingWhatif& self);
  /// Evaluates one drained request list (chunked to max_batch) and fills
  /// every request's reply. Serialized by eval_mu_.
  void evaluate_requests(std::vector<PendingWhatif*>& reqs);
  [[nodiscard]] Error validate_scenarios(
      const std::vector<std::vector<timing::ArcDelta>>& scenarios);

  /// Engine access: shared = what-if evaluation / delta validation (reads),
  /// exclusive = commit (mutates + republishes). Declared before engine_
  /// so the pt_guarded_by annotation can name it. core::Engine itself is
  /// externally synchronized — this capability IS its lock; batch_ keeps a
  /// const Engine* of its own, exercised only under a shared hold here.
  util::SharedMutex engine_mu_{"serve.engine", util::lockrank::kServeEngine};
  core::Engine* engine_ INSTA_PT_GUARDED_BY(engine_mu_);
  ServiceOptions options_;
  core::ScenarioBatch batch_;

  /// RCU-published snapshot. The annotated micro-mutex capability guards
  /// only the pointer swap and copy (std::atomic<shared_ptr> would do, but
  /// libstdc++'s lock-bit implementation trips ThreadSanitizer); snapshot
  /// contents are immutable once published.
  mutable util::Mutex snap_mu_{"serve.snap", util::lockrank::kServeSnap};
  std::shared_ptr<const TimingSnapshot> snap_ INSTA_GUARDED_BY(snap_mu_);

  /// Session table, edit slot, and deterministic stats.
  mutable util::Mutex state_mu_{"serve.state", util::lockrank::kServeState};
  std::unordered_map<SessionId, Session> sessions_ INSTA_GUARDED_BY(state_mu_);
  SessionId next_session_ INSTA_GUARDED_BY(state_mu_) = 1;
  SessionId editor_ INSTA_GUARDED_BY(state_mu_) = -1;
  ServiceStats stats_ INSTA_GUARDED_BY(state_mu_);

  /// Micro-batcher state. queue_cv_ wakes the collecting leader early when
  /// the queue fills; done_cv_ wakes waiters whose request completed.
  /// Mutable for the const queue_depth() introspection read.
  mutable util::Mutex queue_mu_{"serve.queue", util::lockrank::kServeQueue};
  util::CondVar queue_cv_;
  util::CondVar done_cv_;
  std::vector<PendingWhatif*> queue_ INSTA_GUARDED_BY(queue_mu_);
  std::size_t queued_scenarios_ INSTA_GUARDED_BY(queue_mu_) = 0;
  bool collecting_ INSTA_GUARDED_BY(queue_mu_) = false;

  /// Serializes ScenarioBatch::evaluate calls (collection of batch N+1
  /// overlaps evaluation of batch N, evaluation itself is sequential).
  util::Mutex eval_mu_{"serve.eval", util::lockrank::kServeEval};

  /// Replication state. delta_log_ is appended under exclusive engine_mu_
  /// (its own mutex ranks below, kReplicaLog); whatif_cache_ is internally
  /// locked and only ever touched with no serve lock held.
  replica::DeltaLog delta_log_;
  replica::WhatifCache whatif_cache_;
  std::atomic<const replica::ReplicationInfo*> repl_info_{nullptr};
};

}  // namespace insta::serve
