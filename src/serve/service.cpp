#include "serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <utility>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace insta::serve {

using telemetry::FlightEventType;
using timing::ArcDelta;
using util::check;

namespace {

/// Steady-clock nanoseconds for the WhatifTiming breakdown. Raw chrono, not
/// Tracer::now_ns(): the breakdown is wire-protocol behavior and must work
/// in telemetry-off builds.
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Registered-once service counters (no-op stubs when telemetry is off).
struct ServeMetrics {
  telemetry::Counter requests;
  telemetry::Counter scenarios;
  telemetry::Counter batches;
  telemetry::Counter shed;
  telemetry::Counter commits;
  telemetry::Counter rollbacks;
  telemetry::Counter snapshots;
  telemetry::Histogram batch_occupancy;
  telemetry::Histogram eval_us;
  telemetry::Histogram whatif_latency_us;
  telemetry::Gauge queue_depth;
  telemetry::Gauge sessions;
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m = [] {
    auto& r = telemetry::MetricsRegistry::global();
    ServeMetrics sm;
    sm.requests = r.counter("serve.whatif_requests");
    sm.scenarios = r.counter("serve.whatif_scenarios");
    sm.batches = r.counter("serve.batches");
    sm.shed = r.counter("serve.shed");
    sm.commits = r.counter("serve.commits");
    sm.rollbacks = r.counter("serve.rollbacks");
    sm.snapshots = r.counter("serve.snapshots_published");
    sm.batch_occupancy = r.histogram("serve.batch_occupancy");
    sm.eval_us = r.histogram("serve.eval_us");
    sm.whatif_latency_us = r.histogram("serve.whatif_latency_us");
    sm.queue_depth = r.gauge("serve.queue_depth");
    sm.sessions = r.gauge("serve.open_sessions");
    return sm;
  }();
  return m;
}

}  // namespace

std::uint64_t next_request_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "ok";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kBadSession: return "bad-session";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kEditConflict: return "edit-conflict";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kUnknownCorner: return "unknown-corner";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::vector<std::string> ServiceOptions::validate() const {
  std::vector<std::string> problems;
  if (batch_window_us < 0 || batch_window_us > 10'000'000) {
    problems.emplace_back("batch_window_us must be in [0, 10000000]");
  }
  if (max_batch < 1) problems.emplace_back("max_batch must be >= 1");
  if (max_queue < 1) problems.emplace_back("max_queue must be >= 1");
  if (max_queue < max_batch) {
    problems.emplace_back("max_queue must be >= max_batch");
  }
  if (max_inflight_per_session < 1) {
    problems.emplace_back("max_inflight_per_session must be >= 1");
  }
  if (max_sessions < 1) problems.emplace_back("max_sessions must be >= 1");
  if (whatif_cache_entries < 0) {
    problems.emplace_back("whatif_cache_entries must be >= 0");
  }
  if (delta_log_capacity < 1) {
    problems.emplace_back("delta_log_capacity must be >= 1");
  }
  return problems;
}

TimingService::TimingService(core::Engine& engine, ServiceOptions options)
    : engine_(&engine),
      options_(options),
      batch_(engine, core::ScenarioBatchOptions{
                         .strategy = core::ScenarioStrategy::kAuto,
                         .collect_endpoints = options.collect_endpoints}),
      delta_log_(options.delta_log_capacity < 1
                     ? 1
                     : static_cast<std::size_t>(options.delta_log_capacity)),
      whatif_cache_(options.whatif_cache_entries < 0
                        ? 0
                        : static_cast<std::size_t>(
                              options.whatif_cache_entries)) {
  if (const std::vector<std::string> problems = options_.validate();
      !problems.empty()) {
    std::string msg = "TimingService: invalid ServiceOptions:";
    for (const std::string& p : problems) {
      msg += ' ';
      msg += p;
      msg += ';';
    }
    check(false, msg);
  }
  check(engine.timing_clean(),
        "TimingService: engine has pending annotations (run run_forward() "
        "before constructing the service)");
  // The delta chain starts at the engine's current committed generation:
  // a replica at this generation needs zero deltas, not a resync.
  delta_log_.seed(engine.generation());
  // No client can exist yet, but publish_snapshot() requires exclusive
  // engine access by contract, so take it (uncontended) rather than carve
  // out a constructor exemption.
  const util::WriteLock el(engine_mu_);
  publish_snapshot();
}

TimingService::~TimingService() = default;

void TimingService::publish_snapshot() {
  auto snap = std::make_shared<TimingSnapshot>();
  snap->version = engine_->generation();
  snap->has_hold = engine_->options().enable_hold;
  const std::size_t num_corners = engine_->num_corners();
  const std::size_t n = engine_->graph().endpoints().size();
  snap->corners.reserve(num_corners);
  for (const core::CornerSpec& cs : engine_->corners()) {
    snap->corners.push_back(cs.name);
  }
  snap->setup = engine_->merged_summary(core::Mode::kSetup);
  snap->setup_by_corner.reserve(num_corners);
  snap->slack_by_corner.reserve(num_corners * n);
  for (std::size_t c = 0; c < num_corners; ++c) {
    const auto corner = static_cast<core::CornerId>(c);
    snap->setup_by_corner.push_back(
        engine_->summary(core::Mode::kSetup, corner));
    const std::span<const float> s = engine_->endpoint_slacks(corner);
    snap->slack_by_corner.insert(snap->slack_by_corner.end(), s.begin(),
                                 s.end());
  }
  if (num_corners == 1) {
    snap->slack.assign(engine_->endpoint_slacks().begin(),
                       engine_->endpoint_slacks().end());
  } else {
    // Merged per-endpoint slack: worst finite value over the corners (the
    // per-endpoint analogue of Engine::merged_summary).
    snap->slack.assign(n, std::numeric_limits<float>::infinity());
    for (std::size_t c = 0; c < num_corners; ++c) {
      for (std::size_t e = 0; e < n; ++e) {
        const float s = snap->slack_by_corner[c * n + e];
        if (s < snap->slack[e]) snap->slack[e] = s;
      }
    }
  }
  if (snap->has_hold) {
    snap->hold = engine_->merged_summary(core::Mode::kHold);
    snap->hold_by_corner.reserve(num_corners);
    snap->hold_slack_by_corner.reserve(num_corners * n);
    for (std::size_t c = 0; c < num_corners; ++c) {
      const auto corner = static_cast<core::CornerId>(c);
      snap->hold_by_corner.push_back(
          engine_->summary(core::Mode::kHold, corner));
      for (std::size_t e = 0; e < n; ++e) {
        snap->hold_slack_by_corner.push_back(engine_->endpoint_hold_slack(
            static_cast<timing::EndpointId>(e), corner));
      }
    }
    snap->hold_slack.assign(n, std::numeric_limits<float>::infinity());
    for (std::size_t c = 0; c < num_corners; ++c) {
      for (std::size_t e = 0; e < n; ++e) {
        const float s = snap->hold_slack_by_corner[c * n + e];
        if (s < snap->hold_slack[e]) snap->hold_slack[e] = s;
      }
    }
  }
  {
    const util::LockGuard sl(snap_mu_);
    snap_ = std::move(snap);
  }
  serve_metrics().snapshots.inc();
  const util::LockGuard sl(state_mu_);
  ++stats_.snapshots_published;
}

// ---- sessions ---------------------------------------------------------------

Error TimingService::open_session(SessionId& out) {
  const util::LockGuard sl(state_mu_);
  if (static_cast<int>(sessions_.size()) >= options_.max_sessions) {
    ++stats_.shed;
    serve_metrics().shed.inc();
    return Error::make(ErrorCode::kOverloaded,
                       "session limit reached (" +
                           std::to_string(options_.max_sessions) + ")");
  }
  out = next_session_++;
  sessions_.emplace(out, Session{});
  ++stats_.sessions_opened;
  serve_metrics().sessions.set(static_cast<double>(sessions_.size()));
  return Error::success();
}

Error TimingService::close_session(SessionId session) {
  const util::LockGuard sl(state_mu_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Error::make(ErrorCode::kBadSession,
                       "unknown session " + std::to_string(session));
  }
  if (it->second.inflight > 0) {
    return Error::make(ErrorCode::kBadSession,
                       "session " + std::to_string(session) +
                           " has in-flight requests");
  }
  if (it->second.editing) {
    editor_ = -1;
    ++stats_.rollbacks;
    serve_metrics().rollbacks.inc();
  }
  sessions_.erase(it);
  serve_metrics().sessions.set(static_cast<double>(sessions_.size()));
  return Error::success();
}

// ---- what-if batching -------------------------------------------------------

Error TimingService::validate_scenarios(
    const std::vector<std::vector<ArcDelta>>& scenarios) {
  const util::SharedLock el(engine_mu_);
  Error err;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const analysis::LintReport report = engine_->check_deltas(scenarios[s]);
    if (report.has_errors()) {
      err.code = ErrorCode::kBadRequest;
      err.message = "scenario " + std::to_string(s) + " has invalid deltas";
    }
    // Warnings (duplicate arcs) are carried along but do not reject: the
    // evaluator applies them last-wins, same as a sequential annotate.
    if (!report.empty()) err.diagnostics.merge(report);
  }
  return err;
}

Error TimingService::whatif(
    SessionId session, const std::vector<std::vector<ArcDelta>>& scenarios,
    WhatifReply& out, std::uint64_t request_id, core::CornerId corner) {
  ServeMetrics& sm = serve_metrics();
  auto& fr = telemetry::FlightRecorder::global();
  if (request_id == 0) request_id = next_request_id();
  out.request_id = request_id;
  const auto detail = static_cast<std::uint32_t>(scenarios.size());
  INSTA_TRACE_SCOPE("serve.whatif",
                    static_cast<std::int64_t>(scenarios.size()));
  // Every exit path — shed, rejected, failed, served — observes the latency
  // histogram: a dashboard reading p99 must see the requests the server
  // turned away, not just the ones it liked.
  util::Stopwatch sw;
  const auto observe_latency = [&sm, &sw] {
    sm.whatif_latency_us.observe(sw.elapsed_sec() * 1e6);
  };
  if (scenarios.empty()) {
    observe_latency();
    return Error::make(ErrorCode::kBadRequest, "whatif: empty scenario list");
  }
  {
    const util::LockGuard sl(state_mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      observe_latency();
      return Error::make(ErrorCode::kBadSession,
                         "unknown session " + std::to_string(session));
    }
    if (it->second.inflight >= options_.max_inflight_per_session) {
      ++stats_.shed;
      sm.shed.inc();
      fr.record(FlightEventType::kShed, request_id, 0, detail);
      observe_latency();
      return Error::make(
          ErrorCode::kOverloaded,
          "session " + std::to_string(session) + " already has " +
              std::to_string(it->second.inflight) + " requests in flight");
    }
    ++it->second.inflight;
  }
  fr.record(FlightEventType::kAdmit, request_id, 0, detail);
  // The session's inflight slot is held from here on; every exit path must
  // release it.
  const auto release = [this, session] {
    const util::LockGuard sl(state_mu_);
    --sessions_.find(session)->second.inflight;
  };

  if (Error err = validate_scenarios(scenarios); !err.ok()) {
    release();
    observe_latency();
    return err;
  }

  // Cache consult, before the micro-batcher: optimization loops re-ask
  // near-identical questions against the same committed generation, and an
  // all-hit request is answered from the published snapshot's version
  // without touching the engine, the queue, or the evaluator. A partial
  // hit evaluates the whole request (results must share one baseline
  // version) and refreshes every entry afterwards.
  std::vector<replica::WhatifCache::CanonicalScenario> canon;
  if (whatif_cache_.enabled()) {
    const std::uint64_t cache_version = snapshot()->version;
    canon.reserve(scenarios.size());
    std::vector<core::ScenarioResult> cached(scenarios.size());
    bool all_hit = true;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      canon.push_back(replica::WhatifCache::canonicalize(scenarios[i]));
      if (!whatif_cache_.lookup(cache_version, corner, canon[i], cached[i])) {
        all_hit = false;
      }
    }
    if (all_hit) {
      out.version = cache_version;
      out.results = std::move(cached);
      out.timing = WhatifTiming{};
      {
        const util::LockGuard sl(state_mu_);
        ++stats_.whatif_requests;
      }
      sm.requests.inc();
      fr.record(FlightEventType::kReply, request_id, out.version, 0);
      observe_latency();
      release();
      return Error::success();
    }
  }

  PendingWhatif req;
  req.request_id = request_id;
  req.scenarios = &scenarios;
  req.reply = &out;
  {
    util::UniqueLock ql(queue_mu_);
    if (queued_scenarios_ + scenarios.size() >
        static_cast<std::size_t>(options_.max_queue)) {
      ql.unlock();
      release();
      fr.record(FlightEventType::kShed, request_id, 0, detail);
      observe_latency();
      const util::LockGuard sl(state_mu_);
      ++stats_.shed;
      sm.shed.inc();
      return Error::make(ErrorCode::kOverloaded,
                         "what-if queue full (" +
                             std::to_string(options_.max_queue) +
                             " scenarios)");
    }
    // Recorded before the queue push so the leader's kBatch event for this
    // request can never precede its kEnqueue in ticket order; the 's' flow
    // point parent-links the batch spans back to this request thread.
    req.enqueue_ns = steady_now_ns();
    fr.record(FlightEventType::kEnqueue, request_id, 0, detail);
    telemetry::Tracer::global().flow(request_id, 's');
    queue_.push_back(&req);
    queued_scenarios_ += scenarios.size();
    sm.queue_depth.set(static_cast<double>(queued_scenarios_));
    if (!collecting_) {
      collecting_ = true;
      req.leader = true;
    } else if (queued_scenarios_ >=
               static_cast<std::size_t>(options_.max_batch)) {
      queue_cv_.notify_all();  // batch is full: wake the leader early
    }
  }
  {
    const util::LockGuard sl(state_mu_);
    ++stats_.whatif_requests;
  }
  sm.requests.inc();

  if (req.leader) {
    run_batch_leader(req);
  } else {
    util::UniqueLock ql(queue_mu_);
    done_cv_.wait(ql, [&req] { return req.done; });
  }
  const auto us = [](std::int64_t a, std::int64_t b) {
    return std::max<std::int64_t>(0, (b - a) / 1000);
  };
  out.timing.queue_us = us(req.enqueue_ns, req.drained_ns);
  out.timing.batch_us = us(req.drained_ns, req.eval_begin_ns);
  out.timing.eval_us = us(req.eval_begin_ns, req.eval_end_ns);
  telemetry::Tracer::global().flow(request_id, 'f');
  fr.record(FlightEventType::kReply, request_id, out.version,
            req.error.ok() ? 0
                           : static_cast<std::uint32_t>(req.error.code));
  if (req.error.ok() && !canon.empty()) {
    // Populate the cache at the version the batch actually evaluated
    // against (a commit may have landed between the probe and the drain).
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      whatif_cache_.insert(out.version, corner, std::move(canon[i]),
                           out.results[i]);
    }
  }
  observe_latency();
  release();
  return req.error;
}

void TimingService::run_batch_leader(PendingWhatif& self) {
  std::vector<PendingWhatif*> reqs;
  {
    util::UniqueLock ql(queue_mu_);
    if (options_.batch_window_us > 0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.batch_window_us);
      // Manual wait loop: the condition reads queued_scenarios_, which is
      // guarded state, and Clang's analysis cannot see through a predicate
      // lambda (it would flag the access as unlocked).
      while (queued_scenarios_ < static_cast<std::size_t>(options_.max_batch)) {
        if (queue_cv_.wait_until(ql, deadline) == std::cv_status::timeout) {
          break;
        }
      }
    }
    reqs.swap(queue_);
    queued_scenarios_ = 0;
    serve_metrics().queue_depth.set(0.0);
    // Collection of the next batch may begin while this one evaluates.
    collecting_ = false;
  }

  // The leader span encloses the whole batch; one 't' flow point per member
  // links every co-travelling request into it, which is what makes the
  // coalescing visible in the Chrome trace (N arrows into one slice).
  INSTA_TRACE_SCOPE("serve.batch", static_cast<std::int64_t>(reqs.size()));
  const std::int64_t drained = steady_now_ns();
  auto& tracer = telemetry::Tracer::global();
  auto& fr = telemetry::FlightRecorder::global();
  const auto occupancy = static_cast<std::uint32_t>(reqs.size());
  for (PendingWhatif* r : reqs) {
    r->drained_ns = drained;
    tracer.flow(r->request_id, 't');
    fr.record(FlightEventType::kBatch, r->request_id, 0, occupancy);
  }

  evaluate_requests(reqs);

  {
    const util::LockGuard ql(queue_mu_);
    for (PendingWhatif* r : reqs) r->done = true;
  }
  done_cv_.notify_all();
  (void)self;  // self is one of reqs; kept for signature clarity
}

void TimingService::evaluate_requests(std::vector<PendingWhatif*>& reqs) {
  ServeMetrics& sm = serve_metrics();
  // Flatten the drained requests into (request, scenario) order, then
  // evaluate in max_batch-sized chunks under one shared engine lock so the
  // whole drain sees a single baseline version.
  struct Item {
    PendingWhatif* req;
    std::size_t index;  ///< scenario index within the request
  };
  std::vector<Item> items;
  for (PendingWhatif* r : reqs) {
    r->reply->results.clear();
    r->reply->results.resize(r->scenarios->size());
    for (std::size_t i = 0; i < r->scenarios->size(); ++i) {
      items.push_back({r, i});
    }
  }

  const util::LockGuard evl(eval_mu_);
  const util::SharedLock el(engine_mu_);
  const std::uint64_t version = engine_->generation();
  const std::int64_t eval_begin = steady_now_ns();
  for (PendingWhatif* r : reqs) r->eval_begin_ns = eval_begin;
  util::Stopwatch sw;
  const auto chunk_cap = static_cast<std::size_t>(options_.max_batch);
  std::uint64_t num_batches = 0;
  std::uint64_t max_occupancy = 0;
  for (std::size_t lo = 0; lo < items.size(); lo += chunk_cap) {
    const std::size_t hi = std::min(items.size(), lo + chunk_cap);
    INSTA_TRACE_SCOPE("serve.eval_chunk", static_cast<std::int64_t>(hi - lo));
    std::vector<std::span<const ArcDelta>> spans;
    std::vector<std::uint64_t> flow_ids;
    spans.reserve(hi - lo);
    flow_ids.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      spans.push_back((*items[i].req->scenarios)[items[i].index]);
      flow_ids.push_back(items[i].req->request_id);
    }
    try {
      std::vector<core::ScenarioResult> results =
          batch_.evaluate(spans, flow_ids);
      for (std::size_t i = lo; i < hi; ++i) {
        items[i].req->reply->results[items[i].index] =
            std::move(results[i - lo]);
      }
    } catch (const util::CheckError& e) {
      // Scenarios were pre-validated, so this is an engine-side failure;
      // fail every request in the chunk with the same diagnosis.
      for (std::size_t i = lo; i < hi; ++i) {
        items[i].req->error = Error::make(
            ErrorCode::kInternal,
            std::string("scenario batch evaluation failed: ") + e.what());
      }
    }
    ++num_batches;
    max_occupancy =
        std::max(max_occupancy, static_cast<std::uint64_t>(hi - lo));
    sm.batch_occupancy.observe(static_cast<double>(hi - lo));
  }
  const std::int64_t eval_end = steady_now_ns();
  auto& fr = telemetry::FlightRecorder::global();
  for (PendingWhatif* r : reqs) {
    r->eval_end_ns = eval_end;
    r->reply->version = version;
    fr.record(FlightEventType::kEval, r->request_id, version,
              static_cast<std::uint32_t>(r->scenarios->size()));
  }
  sm.eval_us.observe(sw.elapsed_sec() * 1e6);
  sm.batches.add(num_batches);
  sm.scenarios.add(items.size());

  const util::LockGuard sl(state_mu_);
  stats_.batches += num_batches;
  stats_.whatif_scenarios += items.size();
  stats_.max_batch_occupancy =
      std::max(stats_.max_batch_occupancy, max_occupancy);
}

// ---- exclusive edits --------------------------------------------------------

Error TimingService::begin_edit(SessionId session) {
  if (options_.read_only) {
    return Error::make(ErrorCode::kUnsupported,
                       "server is a read-only replica (edits go to the "
                       "writer; replication applies them here)");
  }
  const util::LockGuard sl(state_mu_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Error::make(ErrorCode::kBadSession,
                       "unknown session " + std::to_string(session));
  }
  if (it->second.editing) {
    return Error::make(ErrorCode::kBadSession,
                       "session " + std::to_string(session) +
                           " already has an open edit");
  }
  if (editor_ != -1) {
    return Error::make(ErrorCode::kEditConflict,
                       "session " + std::to_string(editor_) +
                           " holds the edit slot");
  }
  editor_ = session;
  it->second.editing = true;
  it->second.pending.clear();
  return Error::success();
}

Error TimingService::annotate(SessionId session,
                              std::span<const ArcDelta> deltas) {
  {
    const util::LockGuard sl(state_mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      return Error::make(ErrorCode::kBadSession,
                         "unknown session " + std::to_string(session));
    }
    if (!it->second.editing) {
      return Error::make(ErrorCode::kBadSession,
                         "session " + std::to_string(session) +
                             " has no open edit (begin_edit first)");
    }
  }
  {
    const util::SharedLock el(engine_mu_);
    const analysis::LintReport report = engine_->check_deltas(deltas);
    if (report.has_errors()) {
      Error err = Error::make(ErrorCode::kBadRequest,
                              "annotate: invalid deltas rejected");
      err.diagnostics = report;
      return err;
    }
  }
  const util::LockGuard sl(state_mu_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.editing) {
    return Error::make(ErrorCode::kBadSession,
                       "edit closed while validating deltas");
  }
  it->second.pending.insert(it->second.pending.end(), deltas.begin(),
                            deltas.end());
  return Error::success();
}

Error TimingService::commit(SessionId session, CommitReply& out) {
  std::vector<ArcDelta> pending;
  {
    const util::LockGuard sl(state_mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      return Error::make(ErrorCode::kBadSession,
                         "unknown session " + std::to_string(session));
    }
    if (!it->second.editing) {
      return Error::make(ErrorCode::kBadSession,
                         "session " + std::to_string(session) +
                             " has no open edit to commit");
    }
    // Commit point: the edit slot is released here; a failure below still
    // leaves the engine rolled back and the edit closed.
    pending = std::move(it->second.pending);
    it->second.pending.clear();
    it->second.editing = false;
    editor_ = -1;
  }

  {
    const util::WriteLock el(engine_mu_);
    if (!pending.empty()) {
      const std::uint64_t parent_gen = engine_->generation();
      try {
        core::Engine::Transaction tx = engine_->begin_edit();
        tx.annotate(pending);
        engine_->run_forward_incremental();
        tx.commit();
        // Capture the commit for delta replication: the exact annotate
        // calls, in order (TNS folds are float-order-sensitive, so a
        // replica must replay them verbatim to stay byte-identical).
        replica::CommitRecord rec;
        rec.parent_generation = parent_gen;
        rec.generation = engine_->generation();
        rec.commit_unix_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count();
        rec.sets = tx.applied();
        delta_log_.append(std::move(rec));
      } catch (const util::CheckError& e) {
        // ~Transaction rolled the engine back to its pre-edit bytes.
        return Error::make(ErrorCode::kInternal,
                           std::string("commit failed: ") + e.what());
      }
      publish_snapshot();
    }
    out.version = engine_->generation();
    out.setup = engine_->merged_summary(core::Mode::kSetup);
    if (engine_->options().enable_hold) {
      out.hold = engine_->merged_summary(core::Mode::kHold);
    }
  }
  serve_metrics().commits.inc();
  const util::LockGuard sl(state_mu_);
  ++stats_.commits;
  return Error::success();
}

Error TimingService::rollback(SessionId session) {
  const util::LockGuard sl(state_mu_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Error::make(ErrorCode::kBadSession,
                       "unknown session " + std::to_string(session));
  }
  if (!it->second.editing) {
    return Error::make(ErrorCode::kBadSession,
                       "session " + std::to_string(session) +
                           " has no open edit to roll back");
  }
  it->second.pending.clear();
  it->second.editing = false;
  editor_ = -1;
  ++stats_.rollbacks;
  serve_metrics().rollbacks.inc();
  return Error::success();
}

// ---- replication ------------------------------------------------------------

core::EngineState TimingService::export_state() {
  // Shared: exporting only reads committed planes; concurrent what-if
  // evaluation (also shared) never mutates them.
  const util::SharedLock el(engine_mu_);
  return engine_->export_state();
}

Error TimingService::import_state(const core::EngineState& state) {
  {
    const util::WriteLock el(engine_mu_);
    try {
      engine_->import_state(state);
    } catch (const util::CheckError& e) {
      return Error::make(ErrorCode::kInternal,
                         std::string("import_state failed: ") + e.what());
    }
    publish_snapshot();
  }
  // The imported generation is the new chain base: anyone replicating from
  // this service resumes from here.
  delta_log_.seed(state.generation);
  return Error::success();
}

Error TimingService::apply_commit(const replica::CommitRecord& rec) {
  {
    const util::WriteLock el(engine_mu_);
    if (engine_->generation() != rec.parent_generation) {
      return Error::make(
          ErrorCode::kInternal,
          "delta for generation " + std::to_string(rec.generation) +
              " does not chain onto local generation " +
              std::to_string(engine_->generation()) + " (resync required)");
    }
    try {
      // The same Transaction + incremental path the writer took, with the
      // writer's annotate calls replayed in order, so the replica's planes
      // and order-sensitive aggregate folds land on identical bytes.
      core::Engine::Transaction tx = engine_->begin_edit();
      for (const core::AppliedDeltas& set : rec.sets) {
        tx.annotate(set.deltas, set.corner);
      }
      engine_->run_forward_incremental();
      tx.commit();
    } catch (const util::CheckError& e) {
      return Error::make(ErrorCode::kInternal,
                         std::string("apply_commit failed: ") + e.what());
    }
    if (engine_->generation() != rec.generation) {
      return Error::make(
          ErrorCode::kInternal,
          "apply_commit: generation diverged (expected " +
              std::to_string(rec.generation) + ", got " +
              std::to_string(engine_->generation()) +
              "); writer and replica disagree on commit semantics");
    }
    delta_log_.append(rec);  // chain continues: replicas can fan out
    publish_snapshot();
  }
  serve_metrics().commits.inc();
  const util::LockGuard sl(state_mu_);
  ++stats_.commits;
  return Error::success();
}

ServiceStats TimingService::stats() const {
  const util::LockGuard sl(state_mu_);
  return stats_;
}

std::size_t TimingService::queue_depth() const {
  const util::LockGuard ql(queue_mu_);
  return queued_scenarios_;
}

std::size_t TimingService::open_sessions() const {
  const util::LockGuard sl(state_mu_);
  return sessions_.size();
}

}  // namespace insta::serve
