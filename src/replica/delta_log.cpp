#include "replica/delta_log.hpp"

#include "util/check.hpp"

namespace insta::replica {

DeltaLog::DeltaLog(std::size_t capacity) : capacity_(capacity) {
  util::check(capacity_ > 0, "DeltaLog: capacity must be positive");
}

void DeltaLog::seed(std::uint64_t generation) {
  util::LockGuard lk(mu_);
  records_.clear();
  base_ = generation;
}

void DeltaLog::append(CommitRecord rec) {
  util::LockGuard lk(mu_);
  const std::uint64_t head =
      records_.empty() ? base_ : records_.back().generation;
  INSTA_CHECK(rec.parent_generation == head,
              "DeltaLog::append: record parent generation " +
                  std::to_string(rec.parent_generation) +
                  " does not extend the chain head " + std::to_string(head));
  records_.push_back(std::move(rec));
  if (records_.size() > capacity_) {
    base_ = records_.front().generation;
    records_.pop_front();
  }
}

bool DeltaLog::since(std::uint64_t from,
                     std::vector<CommitRecord>& out) const {
  util::LockGuard lk(mu_);
  if (from < base_) return false;  // predates the window: full resync
  const std::uint64_t head =
      records_.empty() ? base_ : records_.back().generation;
  if (from > head) return false;  // from a future/diverged chain
  for (const CommitRecord& rec : records_) {
    if (rec.generation > from) out.push_back(rec);
  }
  return true;
}

std::uint64_t DeltaLog::latest() const {
  util::LockGuard lk(mu_);
  return records_.empty() ? base_ : records_.back().generation;
}

std::uint64_t DeltaLog::base() const {
  util::LockGuard lk(mu_);
  return base_;
}

std::size_t DeltaLog::size() const {
  util::LockGuard lk(mu_);
  return records_.size();
}

}  // namespace insta::replica
