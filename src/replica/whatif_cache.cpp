#include "replica/whatif_cache.hpp"

#include "telemetry/telemetry.hpp"

namespace insta::replica {

namespace {
struct CacheMetrics {
  telemetry::Counter hits;
  telemetry::Counter misses;
  telemetry::Counter evictions;
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m = [] {
    auto& r = telemetry::MetricsRegistry::global();
    CacheMetrics cm;
    cm.hits = r.counter("serve.cache_hits");
    cm.misses = r.counter("serve.cache_misses");
    cm.evictions = r.counter("serve.cache_evictions");
    return cm;
  }();
  return m;
}
}  // namespace

WhatifCache::WhatifCache(std::size_t max_entries)
    : max_entries_(max_entries) {}

WhatifCache::CanonicalScenario WhatifCache::canonicalize(
    std::span<const timing::ArcDelta> scenario) {
  CanonicalScenario c;
  c.deltas = timing::canonicalize_deltas(scenario);
  c.hash = timing::delta_set_hash(c.deltas);
  return c;
}

bool WhatifCache::lookup(std::uint64_t generation, std::int32_t corner,
                         const CanonicalScenario& scenario,
                         core::ScenarioResult& out) {
  if (!enabled()) return false;
  const Key key{generation, corner, scenario.hash};
  util::LockGuard lk(mu_);
  const auto it = index_.find(key);
  if (it == index_.end() ||
      !timing::deltas_equal(it->second->canonical, scenario.deltas)) {
    ++stats_.misses;
    cache_metrics().misses.inc();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  out = it->second->result;
  ++stats_.hits;
  cache_metrics().hits.inc();
  return true;
}

void WhatifCache::insert(std::uint64_t generation, std::int32_t corner,
                         CanonicalScenario scenario,
                         const core::ScenarioResult& result) {
  if (!enabled()) return;
  const Key key{generation, corner, scenario.hash};
  util::LockGuard lk(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    // Same key: refresh the value (identical for byte-identical replays;
    // see the FP-ordering caveat in the class comment) and the recency.
    it->second->canonical = std::move(scenario.deltas);
    it->second->result = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= max_entries_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    cache_metrics().evictions.inc();
  }
  lru_.push_front(Entry{key, std::move(scenario.deltas), result});
  index_.emplace(key, lru_.begin());
  stats_.entries = lru_.size();
}

WhatifCacheStats WhatifCache::stats() const {
  util::LockGuard lk(mu_);
  WhatifCacheStats s = stats_;
  s.entries = lru_.size();
  return s;
}

}  // namespace insta::replica
