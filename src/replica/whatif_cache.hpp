#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/scenario_batch.hpp"
#include "timing/delta_canon.hpp"
#include "timing/types.hpp"
#include "util/lock_rank.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace insta::replica {

/// Cumulative cache counters (also published as serve.cache_* telemetry).
struct WhatifCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
};

/// Bounded LRU cache of what-if results, keyed by
/// (engine generation, resolved query corner, canonical delta-set hash).
/// Placement/sizing loops re-ask near-identical questions against the same
/// committed state; a hit returns the stored ScenarioResult without
/// touching the engine or the micro-batcher.
///
/// Keying uses the canonical delta-set form (timing/delta_canon.hpp): two
/// requests whose delta-sets differ only in ordering or duplicate-arc
/// shadowing share one entry. The canonical set itself is stored and
/// compared exactly on lookup, so a 64-bit hash collision degrades to a
/// miss, never to a wrong answer. Entries are generation-stamped, which
/// makes invalidation free: a commit bumps the generation and old entries
/// simply stop matching (and age out of the LRU).
///
/// FP caveat, documented rather than hidden: ScenarioBatch's TNS fold is
/// floating-point order-sensitive in the caller's delta ordering, so two
/// orderings of one logical delta-set can differ in the last bits. The
/// cache returns the first-seen ordering's result for all of them —
/// logically the same answer, bit-exact only for byte-identical replays
/// (which is what the repeated-query benchmarks and CI replay).
///
/// Thread safety: internally locked (kReplicaCache); safe to probe/insert
/// from concurrent request threads. Callers must hold no serve lock.
class WhatifCache {
 public:
  /// One scenario's cache identity, computed once per request and reused
  /// for the probe and the post-evaluation insert.
  struct CanonicalScenario {
    std::vector<timing::ArcDelta> deltas;  ///< canonical form
    std::uint64_t hash = 0;
  };

  /// max_entries == 0 disables the cache (lookup always misses without
  /// counting, insert is a no-op).
  explicit WhatifCache(std::size_t max_entries);

  [[nodiscard]] bool enabled() const { return max_entries_ > 0; }

  [[nodiscard]] static CanonicalScenario canonicalize(
      std::span<const timing::ArcDelta> scenario);

  /// Probes (generation, corner, scenario). On a hit copies the stored
  /// result into `out`, refreshes LRU recency, and returns true.
  [[nodiscard]] bool lookup(std::uint64_t generation, std::int32_t corner,
                            const CanonicalScenario& scenario,
                            core::ScenarioResult& out);

  /// Stores a result, evicting the least-recently-used entry when full.
  /// Re-inserting an existing key refreshes its value and recency.
  void insert(std::uint64_t generation, std::int32_t corner,
              CanonicalScenario scenario, const core::ScenarioResult& result);

  [[nodiscard]] WhatifCacheStats stats() const;

 private:
  struct Key {
    std::uint64_t generation = 0;
    std::int32_t corner = -1;
    std::uint64_t hash = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // The delta-set hash is already well-mixed; fold in the stamp fields.
      return static_cast<std::size_t>(k.hash ^ (k.generation * 0x9e3779b97f4a7c15ull) ^
                                      (static_cast<std::uint64_t>(
                                           static_cast<std::uint32_t>(k.corner))
                                       << 32));
    }
  };
  struct Entry {
    Key key;
    std::vector<timing::ArcDelta> canonical;
    core::ScenarioResult result;
  };

  const std::size_t max_entries_;
  mutable util::Mutex mu_{"replica.cache", util::lockrank::kReplicaCache};
  /// Front = most recently used.
  std::list<Entry> lru_ INSTA_GUARDED_BY(mu_);
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_
      INSTA_GUARDED_BY(mu_);
  WhatifCacheStats stats_ INSTA_GUARDED_BY(mu_);
};

}  // namespace insta::replica
