#pragma once

#include <atomic>
#include <cstdint>

namespace insta::replica {

/// Live replication telemetry a Replicator publishes and the serve layer's
/// `stats` verb reads. All fields are atomics: the poll thread writes while
/// protocol threads read, with no lock shared between them.
struct ReplicationInfo {
  /// Commit deltas applied since this process started.
  std::atomic<std::uint64_t> applied_deltas{0};
  /// Full snapshot transfers (bootstrap or gap recovery). A replica that
  /// only ever catches up through deltas keeps this at 0 after the initial
  /// start — the CI smoke asserts exactly that for a restarted replica.
  std::atomic<std::uint64_t> full_syncs{0};
  /// Microseconds between the writer's commit stamp and this replica's
  /// apply completion, for the most recently applied delta (-1 before the
  /// first apply). Wall-clock based: meaningful on one machine / NTP-sync'd
  /// fleets, which is what the bench and CI measure.
  std::atomic<std::int64_t> last_lag_us{-1};
  /// The writer generation reported by the last delta_stream reply.
  std::atomic<std::uint64_t> upstream_generation{0};
  /// True while the poll loop holds a healthy upstream connection.
  std::atomic<bool> connected{false};
};

}  // namespace insta::replica
