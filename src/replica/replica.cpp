#include "replica/replica.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "replica/codec.hpp"
#include "telemetry/json.hpp"
#include "util/check.hpp"

namespace insta::replica {

namespace {

using telemetry::JsonValue;
using util::check;

std::string errno_text() {
  return std::strerror(errno);  // NOLINT(concurrency-mt-unsafe)
}

std::int64_t now_unix_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

JsonValue parse_reply(const std::string& line) {
  JsonValue doc;
  std::string error;
  check(telemetry::json_parse(line, doc, error),
        "replicator: malformed reply line: " + error);
  return doc;
}

/// Returns reply.result after checking ok; throws with the server's error
/// message otherwise (the upstream is authoritative about why it refused).
const JsonValue& require_result(const JsonValue& reply, const char* op) {
  const JsonValue* ok = reply.find("ok");
  if (ok == nullptr || ok->type != JsonValue::Type::kBool || !ok->boolean) {
    std::string message = "upstream rejected the request";
    if (const JsonValue* err = reply.find("error");
        err != nullptr && err->is_object()) {
      if (const JsonValue* msg = err->find("message");
          msg != nullptr && msg->is_string()) {
        message = msg->string;
      }
    }
    check(false, std::string("replicator: ") + op + ": " + message);
  }
  const JsonValue* result = reply.find("result");
  check(result != nullptr, std::string("replicator: ") + op +
                               ": reply has no result");
  return *result;
}

std::uint64_t require_u64(const JsonValue& obj, const char* key,
                          const char* op) {
  const JsonValue* v = obj.find(key);
  check(v != nullptr && v->is_number() && v->number >= 0,
        std::string("replicator: ") + op + ": missing \"" + key + "\"");
  return static_cast<std::uint64_t>(v->number);
}

}  // namespace

// ---- NetClient ----------------------------------------------------------

NetClient::NetClient(const std::string& endpoint) {
  if (endpoint.rfind("unix:", 0) == 0) {
    const std::string path = endpoint.substr(5);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    check(fd_ >= 0, "socket: " + errno_text());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    check(path.size() < sizeof(addr.sun_path), "unix path too long: " + path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const std::string why = errno_text();
      ::close(fd_);
      fd_ = -1;
      check(false, "connect " + endpoint + ": " + why);
    }
  } else {
    const std::size_t colon = endpoint.rfind(':');
    check(colon != std::string::npos,
          "upstream must be unix:/path or host:port, got " + endpoint);
    const std::string host = endpoint.substr(0, colon);
    const int port = std::atoi(endpoint.c_str() + colon + 1);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    check(fd_ >= 0, "socket: " + errno_text());
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    check(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
          "cannot parse host address " + host);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const std::string why = errno_text();
      ::close(fd_);
      fd_ = -1;
      check(false, "connect " + endpoint + ": " + why);
    }
  }
}

NetClient::~NetClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string NetClient::request(const std::string& line) {
  send_line(line);
  return recv_line();
}

void NetClient::send_line(const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    check(n > 0 || errno == EINTR, "send: " + errno_text());
    if (n > 0) off += static_cast<std::size_t>(n);
  }
}

std::string NetClient::recv_line() {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    check(n > 0, "upstream closed the connection");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

// ---- Replicator ---------------------------------------------------------

Replicator::Replicator(serve::TimingService& service,
                       ReplicatorOptions options)
    : service_(&service), options_(std::move(options)) {
  check(!options_.upstream.empty(), "replicator: upstream endpoint required");
  check(options_.poll_ms >= 1, "replicator: poll_ms must be >= 1");
}

Replicator::~Replicator() { stop(); }

void Replicator::catch_up(NetClient& client) {
  const std::uint64_t local = service_->snapshot()->version;
  const JsonValue ds_reply = parse_reply(client.request(
      "{\"op\": \"delta_stream\", \"from\": " + std::to_string(local) + "}"));
  const JsonValue& ds = require_result(ds_reply, "delta_stream");
  info_.upstream_generation.store(
      require_u64(ds, "generation", "delta_stream"));

  const JsonValue* resync_v = ds.find("resync");
  bool resync = resync_v == nullptr ||
                resync_v->type != JsonValue::Type::kBool || resync_v->boolean;
  if (!resync) {
    const JsonValue* deltas = ds.find("deltas");
    check(deltas != nullptr && deltas->is_array(),
          "replicator: delta_stream reply has no deltas array");
    for (const JsonValue& b64 : deltas->array) {
      check(b64.is_string(), "replicator: delta entry is not a string");
      std::string frame;
      check(base64_decode(b64.string, frame),
            "replicator: delta entry is not valid base64");
      CommitRecord rec;
      const std::string err = decode_delta(frame, rec);
      check(err.empty(), "replicator: bad delta frame: " + err);
      if (!service_->apply_commit(rec).ok()) {
        // The chain stopped extending local state (divergence); only a
        // fresh snapshot re-anchors it.
        resync = true;
        break;
      }
      info_.applied_deltas.fetch_add(1);
      info_.last_lag_us.store(now_unix_us() - rec.commit_unix_us);
    }
  }

  if (resync) {
    const JsonValue sync_reply =
        parse_reply(client.request("{\"op\": \"sync\"}"));
    const JsonValue& sy = require_result(sync_reply, "sync");
    const JsonValue* snap_b64 = sy.find("snapshot");
    check(snap_b64 != nullptr && snap_b64->is_string(),
          "replicator: sync reply has no snapshot");
    std::string frame;
    check(base64_decode(snap_b64->string, frame),
          "replicator: snapshot is not valid base64");
    core::EngineState st;
    const std::string err = decode_snapshot(frame, st);
    check(err.empty(), "replicator: bad snapshot frame: " + err);
    const serve::Error ierr = service_->import_state(st);
    check(ierr.ok(), "replicator: import_state: " + ierr.message);
    info_.full_syncs.fetch_add(1);
    info_.upstream_generation.store(st.generation);
  }
}

void Replicator::bootstrap() {
  try {
    if (client_ == nullptr) {
      client_ = std::make_unique<NetClient>(options_.upstream);
    }
    catch_up(*client_);
  } catch (...) {
    client_.reset();
    info_.connected.store(false);
    throw;
  }
  info_.connected.store(true);
}

void Replicator::start() {
  check(!thread_.joinable(), "replicator: already started");
  stop_requested_.store(false);
  thread_ = std::thread([this] { run(); });
}

void Replicator::stop() {
  if (!thread_.joinable()) return;
  stop_requested_.store(true);
  {
    // Pairs with the wait_for in run(): taking the mutex between the store
    // and the notify closes the missed-wakeup window.
    const util::LockGuard lk(stop_mu_);
  }
  stop_cv_.notify_all();
  thread_.join();
}

void Replicator::run() {
  while (!stop_requested_.load()) {
    try {
      if (client_ == nullptr) {
        client_ = std::make_unique<NetClient>(options_.upstream);
      }
      catch_up(*client_);
      info_.connected.store(true);
    } catch (const std::exception&) {
      // Connection loss or a protocol hiccup: drop the connection and
      // retry on the next tick (the upstream may be restarting).
      client_.reset();
      info_.connected.store(false);
    }
    util::UniqueLock lk(stop_mu_);
    stop_cv_.wait_for(lk, std::chrono::milliseconds(options_.poll_ms),
                      [this] { return stop_requested_.load(); });
  }
}

}  // namespace insta::replica
