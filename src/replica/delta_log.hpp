#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "replica/codec.hpp"
#include "util/lock_rank.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace insta::replica {

/// Bounded in-memory history of the writer's commit deltas — the source of
/// the `delta_stream` protocol verb. Records form a contiguous generation
/// chain (each record's parent_generation is the previous record's
/// generation); when the ring is full the oldest record is dropped and the
/// retained window's base generation advances, at which point replicas
/// older than the window must full-resync.
///
/// Thread safety: appended by the service's commit path (which holds
/// engine_mu_ exclusively, rank 70) and read by protocol threads with no
/// serve lock held; its own mutex ranks below engine_mu_ (kReplicaLog, 65).
class DeltaLog {
 public:
  explicit DeltaLog(std::size_t capacity = 1024);

  /// Seeds the chain base: the generation of the initial full forward pass
  /// (nothing earlier ever existed, so `since(base)` is an empty catch-up,
  /// not a gap). Also drops any recorded history — used on snapshot import,
  /// which invalidates whatever chain a replica had.
  void seed(std::uint64_t generation);

  /// Appends one commit record. Requires rec.parent_generation to extend
  /// the current chain head (checked; a misordered append would silently
  /// corrupt every replica).
  void append(CommitRecord rec);

  /// All records with generation > from, in chain order. Returns false —
  /// and fills nothing — when `from` predates the retained window (the
  /// caller must full-resync). `from == latest()` yields an empty, true
  /// catch-up.
  [[nodiscard]] bool since(std::uint64_t from,
                           std::vector<CommitRecord>& out) const;

  /// Generation of the chain head (the newest record, or the seed base).
  [[nodiscard]] std::uint64_t latest() const;

  /// Oldest generation a delta catch-up can start from (the window base).
  [[nodiscard]] std::uint64_t base() const;

  /// Number of retained records.
  [[nodiscard]] std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable util::Mutex mu_{"replica.log", util::lockrank::kReplicaLog};
  std::deque<CommitRecord> records_ INSTA_GUARDED_BY(mu_);
  /// Generation just before the oldest retained record (== latest when
  /// empty).
  std::uint64_t base_ INSTA_GUARDED_BY(mu_) = 0;
};

}  // namespace insta::replica
