#include "replica/codec.hpp"

#include <cstring>
#include <limits>
#include <type_traits>

#include "util/hash.hpp"

namespace insta::replica {

namespace {

constexpr char kMagic[4] = {'I', 'N', 'S', 'R'};
constexpr std::size_t kHeaderBytes = 24;

// ---- writer -----------------------------------------------------------------

void put_bytes(std::string& buf, const void* data, std::size_t n) {
  buf.append(static_cast<const char*>(data), n);
}

template <typename T>
void put(std::string& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_bytes(buf, &v, sizeof(T));
}

template <typename T>
void put_vec(std::string& buf, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put(buf, static_cast<std::uint64_t>(v.size()));
  if (!v.empty()) put_bytes(buf, v.data(), v.size() * sizeof(T));
}

void put_str(std::string& buf, const std::string& s) {
  put(buf, static_cast<std::uint64_t>(s.size()));
  put_bytes(buf, s.data(), s.size());
}

/// Prepends the frame header to a finished payload.
std::string frame(FrameKind kind, std::string payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  put_bytes(out, kMagic, sizeof(kMagic));
  put(out, kCodecVersion);
  put(out, static_cast<std::uint8_t>(kind));
  put(out, static_cast<std::uint8_t>(0));
  put(out, static_cast<std::uint64_t>(payload.size()));
  put(out, util::fnv1a_64(payload.data(), payload.size()));
  out += payload;
  return out;
}

// ---- reader -----------------------------------------------------------------

/// Bounds-checked payload cursor: every get_* fails soft (error() set, zero
/// value returned) instead of reading past the end, so a truncated or
/// hostile frame can never index out of bounds.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : data_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    if (!take(sizeof(T))) return v;
    std::memcpy(&v, data_.data() + pos_ - sizeof(T), sizeof(T));
    return v;
  }

  template <typename T>
  void get_vec(std::vector<T>& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get<std::uint64_t>();
    if (failed_) return;
    if (n > data_.size() / sizeof(T)) {  // cheap overflow/limits guard
      fail();
      return;
    }
    if (!take(static_cast<std::size_t>(n) * sizeof(T))) return;
    out.resize(static_cast<std::size_t>(n));
    if (n != 0) {
      std::memcpy(out.data(),
                  data_.data() + pos_ - static_cast<std::size_t>(n) * sizeof(T),
                  static_cast<std::size_t>(n) * sizeof(T));
    }
  }

  std::string get_str() {
    const auto n = get<std::uint64_t>();
    if (failed_ || n > data_.size() || !take(static_cast<std::size_t>(n))) {
      fail();
      return {};
    }
    return std::string(
        data_.substr(pos_ - static_cast<std::size_t>(n),
                     static_cast<std::size_t>(n)));
  }

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  bool take(std::size_t n) {
    if (failed_ || n > data_.size() - pos_) {
      fail();
      return false;
    }
    pos_ += n;
    return true;
  }
  void fail() { failed_ = true; }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Validates the frame header; returns the payload view or an error.
std::string check_frame(std::string_view bytes, FrameKind want,
                        std::string_view& payload) {
  if (bytes.size() < kHeaderBytes) return "truncated frame header";
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return "bad magic (not an INSR frame)";
  }
  std::uint16_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  if (version != kCodecVersion) {
    return "unsupported codec version " + std::to_string(version) +
           " (expected " + std::to_string(kCodecVersion) + ")";
  }
  const auto kind = static_cast<std::uint8_t>(bytes[6]);
  if (kind != static_cast<std::uint8_t>(want)) {
    return "unexpected frame kind " + std::to_string(kind);
  }
  std::uint64_t size = 0;
  std::memcpy(&size, bytes.data() + 8, sizeof(size));
  if (size != bytes.size() - kHeaderBytes) {
    return "payload size mismatch (header says " + std::to_string(size) +
           ", frame carries " + std::to_string(bytes.size() - kHeaderBytes) +
           ")";
  }
  std::uint64_t checksum = 0;
  std::memcpy(&checksum, bytes.data() + 16, sizeof(checksum));
  payload = bytes.substr(kHeaderBytes);
  if (checksum != util::fnv1a_64(payload.data(), payload.size())) {
    return "checksum mismatch (corrupted payload)";
  }
  return {};
}

}  // namespace

std::string encode_snapshot(const core::EngineState& s) {
  std::string p;
  put(p, s.generation);
  put(p, s.num_corners);
  put(p, s.num_pins);
  put(p, s.num_slots);
  put(p, s.num_sps);
  put(p, s.num_eps);
  put(p, s.num_arcs);
  put(p, s.top_k);
  put(p, s.tk_stride);
  put(p, s.enable_hold);
  put(p, static_cast<std::uint64_t>(s.corners.size()));
  for (const core::CornerSpec& c : s.corners) {
    put_str(p, c.name);
    put(p, c.delay_scale);
    put(p, c.sigma_scale);
  }
  for (const int rf : {0, 1}) {
    const auto rfi = static_cast<std::size_t>(rf);
    put_vec(p, s.amu[rfi]);
    put_vec(p, s.asig[rfi]);
    put_vec(p, s.sp_mu[rfi]);
    put_vec(p, s.sp_sig[rfi]);
  }
  put_vec(p, s.tk_arr);
  put_vec(p, s.tk_mu);
  put_vec(p, s.tk_sig);
  put_vec(p, s.tk_sp);
  put_vec(p, s.tk_cnt);
  put_vec(p, s.tk2_arr);
  put_vec(p, s.tk2_mu);
  put_vec(p, s.tk2_sig);
  put_vec(p, s.tk2_sp);
  put_vec(p, s.tk2_cnt);
  put_vec(p, s.slack);
  put_vec(p, s.hold_slack);
  put_vec(p, s.ep_worst_rf);
  put_vec(p, s.ep_base_req);
  put_vec(p, s.ep_hold_base);
  put_vec(p, s.tns);
  put_vec(p, s.nviol);
  put_vec(p, s.ths);
  put_vec(p, s.nhold_viol);
  put_vec(p, s.wns);
  put_vec(p, s.wns_any);
  put_vec(p, s.wns_valid);
  put_vec(p, s.whs);
  put_vec(p, s.whs_any);
  put_vec(p, s.whs_valid);
  return frame(FrameKind::kSnapshot, std::move(p));
}

std::string decode_snapshot(std::string_view bytes, core::EngineState& out) {
  std::string_view payload;
  if (std::string err = check_frame(bytes, FrameKind::kSnapshot, payload);
      !err.empty()) {
    return err;
  }
  Reader r(payload);
  core::EngineState s;
  s.generation = r.get<std::uint64_t>();
  s.num_corners = r.get<std::uint32_t>();
  s.num_pins = r.get<std::uint64_t>();
  s.num_slots = r.get<std::uint64_t>();
  s.num_sps = r.get<std::uint64_t>();
  s.num_eps = r.get<std::uint64_t>();
  s.num_arcs = r.get<std::uint64_t>();
  s.top_k = r.get<std::int32_t>();
  s.tk_stride = r.get<std::uint32_t>();
  s.enable_hold = r.get<std::uint8_t>();
  const auto num_corners = r.get<std::uint64_t>();
  if (r.failed() || num_corners > payload.size()) {
    return "truncated snapshot payload (corner list)";
  }
  s.corners.resize(static_cast<std::size_t>(num_corners));
  for (core::CornerSpec& c : s.corners) {
    c.name = r.get_str();
    c.delay_scale = r.get<float>();
    c.sigma_scale = r.get<float>();
  }
  for (const int rf : {0, 1}) {
    const auto rfi = static_cast<std::size_t>(rf);
    r.get_vec(s.amu[rfi]);
    r.get_vec(s.asig[rfi]);
    r.get_vec(s.sp_mu[rfi]);
    r.get_vec(s.sp_sig[rfi]);
  }
  r.get_vec(s.tk_arr);
  r.get_vec(s.tk_mu);
  r.get_vec(s.tk_sig);
  r.get_vec(s.tk_sp);
  r.get_vec(s.tk_cnt);
  r.get_vec(s.tk2_arr);
  r.get_vec(s.tk2_mu);
  r.get_vec(s.tk2_sig);
  r.get_vec(s.tk2_sp);
  r.get_vec(s.tk2_cnt);
  r.get_vec(s.slack);
  r.get_vec(s.hold_slack);
  r.get_vec(s.ep_worst_rf);
  r.get_vec(s.ep_base_req);
  r.get_vec(s.ep_hold_base);
  r.get_vec(s.tns);
  r.get_vec(s.nviol);
  r.get_vec(s.ths);
  r.get_vec(s.nhold_viol);
  r.get_vec(s.wns);
  r.get_vec(s.wns_any);
  r.get_vec(s.wns_valid);
  r.get_vec(s.whs);
  r.get_vec(s.whs_any);
  r.get_vec(s.whs_valid);
  if (r.failed()) return "truncated snapshot payload";
  if (!r.exhausted()) return "trailing bytes after snapshot payload";
  out = std::move(s);
  return {};
}

std::string encode_delta(const CommitRecord& rec) {
  std::string p;
  put(p, rec.parent_generation);
  put(p, rec.generation);
  put(p, rec.commit_unix_us);
  put(p, static_cast<std::uint64_t>(rec.sets.size()));
  for (const core::AppliedDeltas& set : rec.sets) {
    put(p, set.corner);
    put(p, static_cast<std::uint64_t>(set.deltas.size()));
    for (const timing::ArcDelta& d : set.deltas) {
      put(p, d.arc);
      put(p, d.mu[0]);
      put(p, d.mu[1]);
      put(p, d.sigma[0]);
      put(p, d.sigma[1]);
    }
  }
  return frame(FrameKind::kDelta, std::move(p));
}

std::string decode_delta(std::string_view bytes, CommitRecord& out) {
  std::string_view payload;
  if (std::string err = check_frame(bytes, FrameKind::kDelta, payload);
      !err.empty()) {
    return err;
  }
  Reader r(payload);
  CommitRecord rec;
  rec.parent_generation = r.get<std::uint64_t>();
  rec.generation = r.get<std::uint64_t>();
  rec.commit_unix_us = r.get<std::int64_t>();
  const auto num_sets = r.get<std::uint64_t>();
  if (r.failed() || num_sets > payload.size()) {
    return "truncated delta payload (set count)";
  }
  rec.sets.resize(static_cast<std::size_t>(num_sets));
  for (core::AppliedDeltas& set : rec.sets) {
    set.corner = r.get<core::CornerId>();
    const auto n = r.get<std::uint64_t>();
    if (r.failed() || n > payload.size()) {
      return "truncated delta payload (delta count)";
    }
    set.deltas.resize(static_cast<std::size_t>(n));
    for (timing::ArcDelta& d : set.deltas) {
      d.arc = r.get<timing::ArcId>();
      d.mu[0] = r.get<double>();
      d.mu[1] = r.get<double>();
      d.sigma[0] = r.get<double>();
      d.sigma[1] = r.get<double>();
    }
  }
  if (r.failed()) return "truncated delta payload";
  if (!r.exhausted()) return "trailing bytes after delta payload";
  out = std::move(rec);
  return {};
}

// ---- base64 -------------------------------------------------------------------

namespace {
constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Decode table: 0..63 for alphabet characters, -1 otherwise, -2 for '='.
constexpr signed char b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return static_cast<signed char>(c - 'A');
  if (c >= 'a' && c <= 'z') return static_cast<signed char>(c - 'a' + 26);
  if (c >= '0' && c <= '9') return static_cast<signed char>(c - '0' + 52);
  if (c == '+') return 62;
  if (c == '/') return 63;
  if (c == '=') return -2;
  return -1;
}
}  // namespace

std::string base64_encode(std::string_view bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    const std::uint32_t v = (static_cast<std::uint8_t>(bytes[i]) << 16) |
                            (static_cast<std::uint8_t>(bytes[i + 1]) << 8) |
                            static_cast<std::uint8_t>(bytes[i + 2]);
    out += kB64Alphabet[(v >> 18) & 63];
    out += kB64Alphabet[(v >> 12) & 63];
    out += kB64Alphabet[(v >> 6) & 63];
    out += kB64Alphabet[v & 63];
  }
  const std::size_t rem = bytes.size() - i;
  if (rem == 1) {
    const std::uint32_t v = static_cast<std::uint8_t>(bytes[i]) << 16;
    out += kB64Alphabet[(v >> 18) & 63];
    out += kB64Alphabet[(v >> 12) & 63];
    out += "==";
  } else if (rem == 2) {
    const std::uint32_t v = (static_cast<std::uint8_t>(bytes[i]) << 16) |
                            (static_cast<std::uint8_t>(bytes[i + 1]) << 8);
    out += kB64Alphabet[(v >> 18) & 63];
    out += kB64Alphabet[(v >> 12) & 63];
    out += kB64Alphabet[(v >> 6) & 63];
    out += '=';
  }
  return out;
}

bool base64_decode(std::string_view text, std::string& out) {
  if (text.size() % 4 != 0) return false;
  std::string result;
  result.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    signed char v[4];
    int pads = 0;
    for (int j = 0; j < 4; ++j) {
      v[j] = b64_value(text[i + j]);
      if (v[j] == -1) return false;
      if (v[j] == -2) {
        // Padding may only appear as the last one or two characters.
        if (i + 4 != text.size() || j < 2) return false;
        ++pads;
        v[j] = 0;
      } else if (pads != 0) {
        return false;  // data after padding
      }
    }
    const std::uint32_t b = (static_cast<std::uint32_t>(v[0]) << 18) |
                            (static_cast<std::uint32_t>(v[1]) << 12) |
                            (static_cast<std::uint32_t>(v[2]) << 6) |
                            static_cast<std::uint32_t>(v[3]);
    result += static_cast<char>((b >> 16) & 0xff);
    if (pads < 2) result += static_cast<char>((b >> 8) & 0xff);
    if (pads < 1) result += static_cast<char>(b & 0xff);
  }
  out = std::move(result);
  return true;
}

}  // namespace insta::replica
