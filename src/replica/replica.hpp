#pragma once

// Replicator — keeps a local TimingService converged onto an upstream
// writer over the NDJSON wire protocol (protocol >= 3).
//
// State machine, per poll:
//
//   delta_stream from=<local generation>
//     in window  -> apply each commit delta through the same Transaction +
//                   incremental path the writer took (byte-identical state)
//     resync     -> sync (full snapshot) -> import_state  [full_syncs++]
//     chain break-> same full resync (a delta that stopped chaining means
//                   local state diverged; only a snapshot re-anchors it)
//
// A replica whose engine was rebuilt from the same design (generation 1,
// the writer's delta log base) catches up through deltas alone, so
// full_syncs stays 0 across restarts — the CI smoke asserts exactly that.
//
// Threading: bootstrap() runs on the caller's thread; start() launches one
// background poll thread which owns the upstream connection exclusively.
// Progress is published through the atomic ReplicationInfo (safe to hand to
// TimingService::set_replication_info for the stats verb).

#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "replica/replication_info.hpp"
#include "serve/service.hpp"
#include "util/lock_rank.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace insta::replica {

/// One blocking NDJSON client connection to `unix:/path` or `host:port`
/// (IPv4 literal). request() sends one line and returns the matching reply
/// line; every failure throws util::CheckError.
class NetClient {
 public:
  explicit NetClient(const std::string& endpoint);
  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  std::string request(const std::string& line);

 private:
  void send_line(const std::string& line);
  std::string recv_line();

  int fd_ = -1;
  std::string buffer_;
};

struct ReplicatorOptions {
  std::string upstream;  ///< unix:/path or host:port of the writer
  int poll_ms = 50;      ///< delta poll cadence
};

class Replicator {
 public:
  /// The service must outlive the replicator and should be read_only (local
  /// edits would fork its generation chain off the writer's).
  Replicator(serve::TimingService& service, ReplicatorOptions options);
  ~Replicator();  ///< joins the poll thread
  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// One synchronous catch-up cycle (delta chain when possible, snapshot
  /// otherwise). Throws util::CheckError when the upstream is unreachable
  /// or speaks a bad protocol — callers retry (the writer may still be
  /// starting).
  void bootstrap();

  /// Launches the background poll loop. Call after bootstrap() succeeds.
  void start();

  /// Stops and joins the poll loop (idempotent; the destructor calls it).
  void stop();

  [[nodiscard]] const ReplicationInfo& info() const { return info_; }

 private:
  /// Runs one catch-up cycle over `client`; throws on connection loss.
  void catch_up(NetClient& client);
  void run();  ///< poll-thread body

  serve::TimingService* service_;
  ReplicatorOptions options_;
  ReplicationInfo info_;
  /// Upstream connection, owned by whichever thread is replicating
  /// (bootstrap caller before start(), the poll thread after).
  std::unique_ptr<NetClient> client_;

  util::Mutex stop_mu_{"replica.poll", util::lockrank::kReplicaCache};
  util::CondVar stop_cv_;
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;
};

}  // namespace insta::replica
