#pragma once

// Versioned binary codec of the replication subsystem: full engine-state
// snapshots (core::EngineState) and generation-stamped commit deltas
// (CommitRecord) serialize to self-describing frames that round-trip every
// float bit-exactly.
//
// Frame layout (all integers native-endian; replication targets processes
// of the same build on the same architecture, and the magic/version/shape
// checks reject anything else):
//
//   offset size  field
//   0      4     magic "INSR"
//   4      2     codec version (kCodecVersion)
//   6      1     frame kind (FrameKind)
//   7      1     reserved (0)
//   8      8     payload size in bytes
//   16     8     FNV-1a-64 checksum of the payload bytes
//   24     n     payload
//
// Payload scalars/arrays are raw memcpy images — floats ship by bit
// pattern, which is what makes "replica state is byte-identical to the
// writer" a property of the transport, not a hope. decode_* rejects bad
// magic, unknown version, wrong kind, size mismatch, truncation, and
// checksum failure with a descriptive error string and touches the output
// only on success.
//
// NDJSON transport: frames travel inside JSON strings as base64
// (base64_encode / base64_decode below).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"

namespace insta::replica {

inline constexpr std::uint16_t kCodecVersion = 1;

enum class FrameKind : std::uint8_t { kSnapshot = 1, kDelta = 2 };

/// One committed serve-layer edit transaction, stamped with the writer
/// generations it moves between: applying `sets` (in order, each through
/// annotate(deltas, corner)) to an engine clean at parent_generation and
/// running one incremental pass yields the writer's state at `generation`,
/// byte for byte.
struct CommitRecord {
  std::uint64_t parent_generation = 0;
  std::uint64_t generation = 0;
  /// Writer wall clock (microseconds since the Unix epoch) at commit;
  /// replicas subtract it from their apply time to measure replication lag.
  std::int64_t commit_unix_us = 0;
  std::vector<core::AppliedDeltas> sets;
};

/// Serializes a full engine-state image into a kSnapshot frame.
[[nodiscard]] std::string encode_snapshot(const core::EngineState& state);

/// Serializes a commit record into a kDelta frame.
[[nodiscard]] std::string encode_delta(const CommitRecord& record);

/// Parses a kSnapshot frame. Returns an empty string and fills `out` on
/// success; otherwise returns the rejection reason and leaves `out` alone.
[[nodiscard]] std::string decode_snapshot(std::string_view bytes,
                                          core::EngineState& out);

/// Parses a kDelta frame; same contract as decode_snapshot.
[[nodiscard]] std::string decode_delta(std::string_view bytes,
                                       CommitRecord& out);

/// Standard base64 (RFC 4648, with padding) for shipping frames inside
/// NDJSON string fields.
[[nodiscard]] std::string base64_encode(std::string_view bytes);

/// Strict decoder: rejects non-alphabet characters, bad length, and
/// misplaced padding. Returns false and leaves `out` alone on failure.
[[nodiscard]] bool base64_decode(std::string_view text, std::string& out);

}  // namespace insta::replica
