#pragma once

#include <memory>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/rules.hpp"

namespace insta::analysis {

/// Options of a lint run.
struct LintOptions {
  /// Reporting cap per rule; findings beyond it are counted, not listed.
  std::size_t max_reports_per_rule = 20;
};

/// The timing-graph linter: statically checks a Design (and, when bound, its
/// Constraints / TimingGraph / ArcDelays) against the invariants the timing
/// engines rely on, and emits structured diagnostics instead of throwing on
/// the first violation the way the engines' own precondition checks do.
///
/// Usage:
///   analysis::Linter linter(design);
///   linter.with_constraints(constraints).with_graph(graph);
///   analysis::LintReport report = linter.run();
///   if (report.has_errors()) { ... }
///
/// Design-stage rules always run. Graph- and delay-stage rules run only when
/// the corresponding object is bound — a design with errors often cannot
/// build a graph at all, which is exactly when a linter is most useful.
class Linter {
 public:
  explicit Linter(const netlist::Design& design);

  /// Binds optional inputs (all must outlive run()).
  Linter& with_constraints(const timing::Constraints& constraints);
  Linter& with_graph(const timing::TimingGraph& graph);
  Linter& with_delays(const timing::ArcDelays& delays);
  Linter& with_options(const LintOptions& options);

  /// Appends a custom rule after the default set.
  Linter& add_rule(std::unique_ptr<Rule> rule);

  /// Runs every rule and returns the collected diagnostics.
  [[nodiscard]] LintReport run() const;

 private:
  LintContext ctx_;
  LintOptions options_;
  std::vector<std::unique_ptr<Rule>> rules_;
};

}  // namespace insta::analysis
