#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "netlist/design.hpp"
#include "timing/constraints.hpp"
#include "timing/graph.hpp"
#include "timing/types.hpp"

namespace insta::analysis {

/// Everything a rule may look at. Only `design` is mandatory; rules that
/// need constraints, the timing graph or annotated delays no-op when the
/// corresponding pointer is null (the Linter runs design-stage rules before
/// the graph exists, because a broken design often cannot build a graph).
struct LintContext {
  const netlist::Design* design = nullptr;
  const timing::Constraints* constraints = nullptr;
  const timing::TimingGraph* graph = nullptr;
  const timing::ArcDelays* delays = nullptr;
  /// Reporting cap per rule; findings beyond it are counted, not listed.
  std::size_t max_reports_per_rule = 20;
};

/// Emission helper that enforces the per-rule reporting cap and records the
/// overflow count into the report when destroyed.
class RuleEmitter {
 public:
  RuleEmitter(std::string_view rule, std::size_t cap, LintReport& out)
      : rule_(rule), cap_(cap), out_(&out) {}
  RuleEmitter(const RuleEmitter&) = delete;
  RuleEmitter& operator=(const RuleEmitter&) = delete;
  ~RuleEmitter() { out_->add_suppressed(rule_, overflow_); }

  void emit(Severity sev, ObjectKind kind, std::int32_t object,
            std::string where, std::string message) {
    if (count_ >= cap_) {
      ++overflow_;
      return;
    }
    ++count_;
    Diagnostic d;
    d.rule = std::string(rule_);
    d.severity = sev;
    d.kind = kind;
    d.object = object;
    d.where = std::move(where);
    d.message = std::move(message);
    out_->add(std::move(d));
  }

  [[nodiscard]] std::size_t emitted() const { return count_; }

 private:
  std::string_view rule_;
  std::size_t cap_ = 0;
  std::size_t count_ = 0;
  std::size_t overflow_ = 0;
  LintReport* out_;
};

/// A composable static check. Each rule owns one (occasionally two closely
/// related) stable rule id(s) and appends findings to the report.
class Rule {
 public:
  virtual ~Rule() = default;
  /// Primary stable rule id, e.g. "combinational-loop".
  [[nodiscard]] virtual std::string_view id() const = 0;
  virtual void run(const LintContext& ctx, LintReport& out) const = 0;
};

// ---- design-stage rules ----------------------------------------------------

/// "liberty-value": NaN/Inf in any characterized LibCell field, negative
/// sigma_ratio / resistances / capacitances (errors and warnings).
class LibertyValuesRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "liberty-value"; }
  void run(const LintContext& ctx, LintReport& out) const override;
};

/// "undriven-pin": input pins connected to nothing, and nets without a
/// driver (every sink of such a net floats).
class UndrivenPinRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "undriven-pin"; }
  void run(const LintContext& ctx, LintReport& out) const override;
};

/// "multi-driver": an output pin claimed as driver by more than one net,
/// an output pin appearing in a sink list, or a pin referenced by several
/// nets' connection lists.
class MultiDriverRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "multi-driver"; }
  void run(const LintContext& ctx, LintReport& out) const override;
};

/// "pin-net-mismatch": a net's driver/sink list names a pin whose own
/// `Pin::net` back-link disagrees, or a connection with the wrong direction.
class PinNetMismatchRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "pin-net-mismatch";
  }
  void run(const LintContext& ctx, LintReport& out) const override;
};

/// "combinational-loop": a cycle through combinational cell input->output
/// and net driver->sink edges. Each independent cycle is reported once with
/// a sample of the pins on it. Such a design cannot be levelized
/// (TimingGraph construction throws), so this rule is the structured
/// pre-graph replacement for that failure.
class CombinationalLoopRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "combinational-loop";
  }
  void run(const LintContext& ctx, LintReport& out) const override;
};

/// "unconstrained-endpoint": an endpoint pin (FF D or primary-output input)
/// that no startpoint (primary input or FF Q) reaches through the
/// connectivity; its slack would be reported as +infinity and it would
/// silently escape all timing optimization.
class UnconstrainedEndpointRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "unconstrained-endpoint";
  }
  void run(const LintContext& ctx, LintReport& out) const override;
};

/// "no-capture-clock" (+ "clock-tree-topology"): flip-flops whose clock pin
/// the constraint clock trees never reach — their endpoints have no
/// capturing clock — and clock trees that run through cells other than
/// buffers/inverters. Needs ctx.constraints; no-ops without them.
class ClockDomainRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "no-capture-clock";
  }
  void run(const LintContext& ctx, LintReport& out) const override;
};

// ---- graph/delay-stage rules ----------------------------------------------

/// "level-inversion": a data arc of the timing graph whose head does not sit
/// at a strictly higher topological level than its tail. Level-synchronous
/// propagation (Algorithm 1) assumes this; a violation means pins within one
/// level are not independent. Needs ctx.graph.
class LevelConsistencyRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "level-inversion";
  }
  void run(const LintContext& ctx, LintReport& out) const override;
};

/// "delay-value": NaN/Inf arc-delay means, NaN or negative POCV sigmas in
/// an annotated ArcDelays store (errors), negative means (warning). Needs
/// ctx.delays; pin names use ctx.graph when available.
class DelayValuesRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "delay-value"; }
  void run(const LintContext& ctx, LintReport& out) const override;
};

/// Testable core of LevelConsistencyRule: returns the indices of `edges`
/// (from-level, to-level pairs) that violate strict monotonicity, i.e.
/// from < 0, to < 0, or to <= from.
[[nodiscard]] std::vector<std::size_t> find_level_inversions(
    std::span<const std::pair<int, int>> edges);

// ---- corner-setup checks ----------------------------------------------------

/// One named analysis corner as configuration surfaces (CLI flags, JSON)
/// see it. Mirrors core::CornerSpec without pulling core/ into analysis/.
struct CornerSetup {
  std::string name;
  double delay_scale = 1.0;
  double sigma_scale = 1.0;
};

/// Validates a corner list before it reaches EngineOptions. Rule ids:
///   "corner-scale" — NaN/Inf or non-positive delay/sigma scale (errors;
///                    matches what EngineOptions::validate rejects);
///   "corner-name"  — empty or duplicate corner names (errors);
///   "corner-count" — the list size disagrees with `expected_corners`, the
///                    corner count of an already-built engine or of a
///                    companion per-corner artifact (error; 0 skips the
///                    check — there is nothing to be consistent with).
[[nodiscard]] LintReport check_corner_setup(
    std::span<const CornerSetup> corners, std::size_t expected_corners = 0,
    std::size_t max_reports_per_rule = 20);

/// Validates a delta-set's target corner against an engine propagating
/// `num_corners` corners. Rule id "corner-reference": ids must be -1
/// (broadcast to every corner) or in [0, num_corners).
[[nodiscard]] LintReport check_corner_reference(std::int32_t corner,
                                                std::size_t num_corners);

/// The default rule set, design-stage rules first.
[[nodiscard]] std::vector<std::unique_ptr<Rule>> default_rules();

}  // namespace insta::analysis
