#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace insta::analysis {

/// Severity of a lint diagnostic.
///
/// kError   — the design/graph violates an invariant an engine relies on;
///            propagation would throw, hang, or silently produce garbage.
/// kWarning — legal but almost certainly unintended (an endpoint nothing
///            can reach, a net that drives nothing).
/// kInfo    — observations useful when debugging a design.
enum class Severity : std::uint8_t { kInfo, kWarning, kError };

/// Short lowercase name of a severity ("error", "warning", "info").
[[nodiscard]] const char* severity_name(Severity s);

/// Kind of design object a diagnostic points at.
enum class ObjectKind : std::uint8_t {
  kNone,     ///< design-wide finding, no single location
  kPin,
  kNet,
  kCell,
  kLibCell,
  kArc,      ///< timing-graph arc id
  kEndpoint, ///< timing-graph endpoint id
};

/// One structured lint finding: a stable rule id, a severity, a location
/// (object kind + id + display name) and a human-readable message.
struct Diagnostic {
  std::string rule;              ///< stable rule id, e.g. "combinational-loop"
  Severity severity = Severity::kError;
  ObjectKind kind = ObjectKind::kNone;
  std::int32_t object = -1;      ///< id within the kind's id space; -1 none
  std::string where;             ///< display name, e.g. "u42/A1" or "net n17"
  std::string message;

  /// One-line rendering: "error[combinational-loop] u42/A1: message".
  [[nodiscard]] std::string str() const;
};

/// The result of a lint run: the collected diagnostics plus per-rule
/// overflow counts (rules cap how many diagnostics they emit so a
/// pathological design cannot produce millions of lines; the counts are
/// still exact).
class LintReport {
 public:
  /// Appends a diagnostic.
  void add(Diagnostic d);

  /// Records `n` further findings of `rule` that were elided by the
  /// per-rule reporting cap.
  void add_suppressed(std::string_view rule, std::size_t n);

  [[nodiscard]] std::span<const Diagnostic> diagnostics() const {
    return diags_;
  }

  /// Number of reported diagnostics with the given severity.
  [[nodiscard]] std::size_t count(Severity s) const;

  /// Number of reported diagnostics of one rule (suppressed ones included).
  [[nodiscard]] std::size_t count_rule(std::string_view rule) const;

  [[nodiscard]] bool has_errors() const { return count(Severity::kError) > 0; }
  [[nodiscard]] bool empty() const { return diags_.empty(); }
  [[nodiscard]] std::size_t size() const { return diags_.size(); }

  /// Multi-line listing of every diagnostic plus a one-line summary.
  [[nodiscard]] std::string str() const;

  /// Merges another report into this one (diagnostics and overflow counts).
  void merge(const LintReport& other);

 private:
  struct Suppressed {
    std::string rule;
    std::size_t count = 0;
  };
  std::vector<Diagnostic> diags_;
  std::vector<Suppressed> suppressed_;
};

}  // namespace insta::analysis
