#include "analysis/lock_hierarchy.hpp"

#if INSTA_LOCK_CHECK_ENABLED

#include <atomic>
#include <cstdio>
#include <cstdlib>

#if defined(__GLIBC__) || defined(__has_include)
#if defined(__GLIBC__) || __has_include(<execinfo.h>)
#include <execinfo.h>
#define INSTA_LOCK_CHECK_BACKTRACE 1
#endif
#endif

namespace insta::analysis {

namespace {

constexpr int kMaxFrames = 24;
constexpr int kMaxHeld = 32;

/// One held lock on the calling thread, with the stack that acquired it.
struct Held {
  const LockRankInfo* info;
  const void* lock;
  bool shared;
  int num_frames;
  void* frames[kMaxFrames];
};

/// Per-thread held-lock stack. A trivially destructible POD (fixed array,
/// no heap) so locks taken during static destruction — e.g. the global
/// ThreadPool parking its workers after main() returns — never touch a
/// destroyed thread_local.
struct HeldStack {
  Held entries[kMaxHeld];
  int count = 0;
};

thread_local HeldStack t_held;

/// Abort-path diagnostic hook (see lock_check_set_abort_hook). Atomic so a
/// late registration cannot tear against a concurrent abort.
std::atomic<LockCheckAbortHook> g_abort_hook{nullptr};

void print_frames(void* const* frames, int n) {
#if defined(INSTA_LOCK_CHECK_BACKTRACE)
  if (n > 0) backtrace_symbols_fd(frames, n, 2 /* stderr */);
#else
  (void)frames;
  (void)n;
  std::fprintf(stderr, "  <backtrace unavailable on this platform>\n");
#endif
}

/// Reports the violation with both stacks — the acquiring call site and the
/// site that took the conflicting lock — plus every lock the thread holds,
/// then aborts. stderr + abort (not an exception) so the report survives
/// even when the caller is noexcept or mid-unwind.
[[noreturn]] void die(const char* kind, const LockRankInfo* info,
                      const void* lock, const Held* conflict) {
  std::fprintf(stderr,
               "\n[INSTA] lock-check: %s\n"
               "  acquiring: '%s' (rank %d, %p)\n"
               "  acquiring stack:\n",
               kind, info->name, info->rank, lock);
#if defined(INSTA_LOCK_CHECK_BACKTRACE)
  void* frames[kMaxFrames];
  const int n = backtrace(frames, kMaxFrames);
  print_frames(frames, n);
#endif
  if (conflict != nullptr) {
    std::fprintf(stderr, "  conflicting: '%s' (rank %d, %p, held %s)\n",
                 conflict->info->name, conflict->info->rank, conflict->lock,
                 conflict->shared ? "shared" : "exclusive");
    std::fprintf(stderr, "  conflicting lock was acquired at:\n");
    print_frames(conflict->frames, conflict->num_frames);
  }
  std::fprintf(stderr, "  locks held by this thread (%d):\n", t_held.count);
  for (int i = 0; i < t_held.count; ++i) {
    const Held& h = t_held.entries[i];
    std::fprintf(stderr, "    [%d] '%s' (rank %d, %p, %s)\n", i, h.info->name,
                 h.info->rank, h.lock, h.shared ? "shared" : "exclusive");
  }
  std::fflush(stderr);
  if (const LockCheckAbortHook hook =
          g_abort_hook.load(std::memory_order_acquire);
      hook != nullptr) {
    hook();
  }
  std::abort();
}

}  // namespace

void lock_check_set_abort_hook(LockCheckAbortHook hook) {
  g_abort_hook.store(hook, std::memory_order_release);
}

void lock_check_acquire(const LockRankInfo* info, const void* lock,
                        bool shared) {
  const Held* min_held = nullptr;
  for (int i = 0; i < t_held.count; ++i) {
    const Held& h = t_held.entries[i];
    if (h.lock == lock) {
      if (h.shared && !shared) {
        die("shared->exclusive upgrade on the same lock (self-deadlock)",
            info, lock, &h);
      }
      die("re-entrant acquisition of a lock this thread already holds", info,
          lock, &h);
    }
    if (min_held == nullptr || h.info->rank < min_held->info->rank) {
      min_held = &h;
    }
  }
  if (min_held != nullptr && info->rank >= min_held->info->rank) {
    die("lock-hierarchy violation (acquired rank must be strictly below "
        "every held rank; see util/lock_rank.hpp)",
        info, lock, min_held);
  }
  if (t_held.count >= kMaxHeld) {
    die("held-lock stack overflow (more than 32 locks held by one thread)",
        info, lock, nullptr);
  }
  Held& h = t_held.entries[t_held.count++];
  h.info = info;
  h.lock = lock;
  h.shared = shared;
  h.num_frames = 0;
#if defined(INSTA_LOCK_CHECK_BACKTRACE)
  h.num_frames = backtrace(h.frames, kMaxFrames);
#endif
}

void lock_check_release(const void* lock) {
  for (int i = t_held.count - 1; i >= 0; --i) {
    if (t_held.entries[i].lock != lock) continue;
    for (int j = i; j + 1 < t_held.count; ++j) {
      t_held.entries[j] = t_held.entries[j + 1];
    }
    --t_held.count;
    return;
  }
  std::fprintf(stderr,
               "\n[INSTA] lock-check: release of a lock (%p) this thread "
               "does not hold\n",
               lock);
  std::fflush(stderr);
  std::abort();
}

std::size_t lock_check_held_count() {
  return static_cast<std::size_t>(t_held.count);
}

}  // namespace insta::analysis

#endif  // INSTA_LOCK_CHECK_ENABLED
