#include "analysis/linter.hpp"

namespace insta::analysis {

Linter::Linter(const netlist::Design& design) : rules_(default_rules()) {
  ctx_.design = &design;
}

Linter& Linter::with_constraints(const timing::Constraints& constraints) {
  ctx_.constraints = &constraints;
  return *this;
}

Linter& Linter::with_graph(const timing::TimingGraph& graph) {
  ctx_.graph = &graph;
  return *this;
}

Linter& Linter::with_delays(const timing::ArcDelays& delays) {
  ctx_.delays = &delays;
  return *this;
}

Linter& Linter::with_options(const LintOptions& options) {
  options_ = options;
  return *this;
}

Linter& Linter::add_rule(std::unique_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
  return *this;
}

LintReport Linter::run() const {
  LintContext ctx = ctx_;
  ctx.max_reports_per_rule = options_.max_reports_per_rule;
  LintReport report;
  for (const auto& rule : rules_) {
    rule->run(ctx, report);
  }
  return report;
}

}  // namespace insta::analysis
