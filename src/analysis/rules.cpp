#include "analysis/rules.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

namespace insta::analysis {

using netlist::CellFunc;
using netlist::CellId;
using netlist::kNullCell;
using netlist::kNullNet;
using netlist::kNullPin;
using netlist::NetId;
using netlist::Pin;
using netlist::PinDir;
using netlist::PinId;
using netlist::PinRole;

namespace {

/// True if any of the given values is NaN or infinite.
bool any_nonfinite(std::initializer_list<double> xs) {
  return std::any_of(xs.begin(), xs.end(),
                     [](double x) { return !std::isfinite(x); });
}

std::string net_where(const netlist::Design& d, NetId n) {
  return "net " + d.net(n).name;
}

/// Forward data-edge walk used by the loop and reachability rules:
/// calls `visit(to)` for every connectivity successor of `pin`.
/// Edges: combinational cell data-input -> output (DFFs deliberately break
/// the walk at D and CK), and net driver -> sinks.
template <typename Fn>
void for_each_successor(const netlist::Design& d, PinId pin_id, Fn&& visit) {
  const Pin& p = d.pin(pin_id);
  if (p.dir == PinDir::kInput) {
    if (p.role == PinRole::kClock) return;
    const CellFunc func = d.libcell_of(p.cell).func;
    if (netlist::is_sequential(func) || !netlist::has_output(func)) return;
    visit(d.output_pin(p.cell));
    return;
  }
  if (p.net == kNullNet) return;
  for (const PinId sink : d.net(p.net).sinks) visit(sink);
}

/// Number of connectivity predecessors of a pin under for_each_successor's
/// edge relation (0 or 1 in a well-formed design).
int predecessor_count(const netlist::Design& d, PinId pin_id) {
  const Pin& p = d.pin(pin_id);
  if (p.dir == PinDir::kInput) {
    // Predecessor: the driver of its net, if any.
    if (p.net == kNullNet) return 0;
    return d.net(p.net).driver == kNullPin ? 0 : 1;
  }
  // Output pin: its cell's data inputs (combinational only).
  const CellFunc func = d.libcell_of(p.cell).func;
  if (netlist::is_sequential(func)) return 0;
  return netlist::num_data_inputs(func);
}

}  // namespace

// ---- LibertyValuesRule ------------------------------------------------------

void LibertyValuesRule::run(const LintContext& ctx, LintReport& out) const {
  RuleEmitter e(id(), ctx.max_reports_per_rule, out);
  const netlist::Library& lib = ctx.design->library();
  for (const netlist::LibCell& lc : lib.cells()) {
    if (any_nonfinite({lc.area, lc.leakage, lc.input_cap, lc.slew_sens,
                       lc.sigma_ratio, lc.setup, lc.hold, lc.intrinsic[0],
                       lc.intrinsic[1], lc.drive_res[0], lc.drive_res[1],
                       lc.slew_intrinsic[0], lc.slew_intrinsic[1],
                       lc.slew_res[0], lc.slew_res[1], lc.clk2q[0],
                       lc.clk2q[1]})) {
      e.emit(Severity::kError, ObjectKind::kLibCell, lc.id, lc.name,
             "library cell has NaN/Inf characterization values");
      continue;
    }
    if (lc.sigma_ratio < 0.0) {
      e.emit(Severity::kError, ObjectKind::kLibCell, lc.id, lc.name,
             "negative POCV sigma_ratio " + std::to_string(lc.sigma_ratio));
    }
    if (lc.input_cap < 0.0 || lc.area < 0.0 || lc.drive_res[0] < 0.0 ||
        lc.drive_res[1] < 0.0 || lc.slew_res[0] < 0.0 ||
        lc.slew_res[1] < 0.0) {
      e.emit(Severity::kWarning, ObjectKind::kLibCell, lc.id, lc.name,
             "negative capacitance/area/resistance characterization");
    }
  }
}

// ---- UndrivenPinRule --------------------------------------------------------

void UndrivenPinRule::run(const LintContext& ctx, LintReport& out) const {
  RuleEmitter e(id(), ctx.max_reports_per_rule, out);
  const netlist::Design& d = *ctx.design;
  for (std::size_t pi = 0; pi < d.num_pins(); ++pi) {
    const Pin& p = d.pins()[pi];
    if (p.dir != PinDir::kInput || p.net != kNullNet) continue;
    e.emit(Severity::kError, ObjectKind::kPin, static_cast<std::int32_t>(pi),
           d.pin_name(static_cast<PinId>(pi)),
           "input pin is not connected to any net");
  }
  for (std::size_t ni = 0; ni < d.num_nets(); ++ni) {
    const netlist::Net& n = d.nets()[ni];
    if (n.driver != kNullPin) continue;
    e.emit(Severity::kError, ObjectKind::kNet, static_cast<std::int32_t>(ni),
           net_where(d, static_cast<NetId>(ni)),
           "net has no driver; its " + std::to_string(n.sinks.size()) +
               " sink(s) float");
  }
}

// ---- MultiDriverRule --------------------------------------------------------

void MultiDriverRule::run(const LintContext& ctx, LintReport& out) const {
  RuleEmitter e(id(), ctx.max_reports_per_rule, out);
  const netlist::Design& d = *ctx.design;
  // Count how many net connection lists reference each pin. In a well-formed
  // design every pin appears at most once across all drivers and sink lists.
  std::vector<std::int32_t> refs(d.num_pins(), 0);
  for (std::size_t ni = 0; ni < d.num_nets(); ++ni) {
    const netlist::Net& n = d.nets()[ni];
    if (n.driver != kNullPin) {
      ++refs[static_cast<std::size_t>(n.driver)];
    }
    for (const PinId s : n.sinks) {
      ++refs[static_cast<std::size_t>(s)];
      if (s == n.driver) {
        e.emit(Severity::kError, ObjectKind::kNet,
               static_cast<std::int32_t>(ni),
               net_where(d, static_cast<NetId>(ni)),
               "net lists its own driver " + d.pin_name(s) + " as a sink");
      } else if (d.pin(s).dir == PinDir::kOutput) {
        e.emit(Severity::kError, ObjectKind::kNet,
               static_cast<std::int32_t>(ni),
               net_where(d, static_cast<NetId>(ni)),
               "output pin " + d.pin_name(s) +
                   " appears in the sink list (second driver?)");
      }
    }
  }
  for (std::size_t pi = 0; pi < d.num_pins(); ++pi) {
    if (refs[pi] <= 1) continue;
    e.emit(Severity::kError, ObjectKind::kPin, static_cast<std::int32_t>(pi),
           d.pin_name(static_cast<PinId>(pi)),
           "pin is referenced by " + std::to_string(refs[pi]) +
               " net connections (must be exactly one)");
  }
}

// ---- PinNetMismatchRule -----------------------------------------------------

void PinNetMismatchRule::run(const LintContext& ctx, LintReport& out) const {
  RuleEmitter e(id(), ctx.max_reports_per_rule, out);
  const netlist::Design& d = *ctx.design;
  for (std::size_t ni = 0; ni < d.num_nets(); ++ni) {
    const netlist::Net& n = d.nets()[ni];
    const auto net_id = static_cast<NetId>(ni);
    if (n.driver != kNullPin) {
      const Pin& p = d.pin(n.driver);
      if (p.dir != PinDir::kOutput) {
        e.emit(Severity::kError, ObjectKind::kNet,
               static_cast<std::int32_t>(ni), net_where(d, net_id),
               "driver " + d.pin_name(n.driver) + " is not an output pin");
      }
      if (p.net != net_id) {
        e.emit(Severity::kError, ObjectKind::kNet,
               static_cast<std::int32_t>(ni), net_where(d, net_id),
               "driver " + d.pin_name(n.driver) +
                   " back-links to a different net");
      }
    }
    for (const PinId s : n.sinks) {
      const Pin& p = d.pin(s);
      if (p.dir == PinDir::kInput && p.net != net_id) {
        e.emit(Severity::kError, ObjectKind::kNet,
               static_cast<std::int32_t>(ni), net_where(d, net_id),
               "sink " + d.pin_name(s) + " back-links to a different net");
      }
    }
  }
}

// ---- CombinationalLoopRule --------------------------------------------------

void CombinationalLoopRule::run(const LintContext& ctx,
                                LintReport& out) const {
  RuleEmitter e(id(), ctx.max_reports_per_rule, out);
  const netlist::Design& d = *ctx.design;
  const std::size_t num_pins = d.num_pins();

  // Kahn's algorithm over the connectivity; whatever survives lies on or
  // downstream of a cycle.
  std::vector<std::int32_t> indeg(num_pins, 0);
  std::deque<PinId> frontier;
  for (std::size_t pi = 0; pi < num_pins; ++pi) {
    indeg[pi] = predecessor_count(d, static_cast<PinId>(pi));
    if (indeg[pi] == 0) frontier.push_back(static_cast<PinId>(pi));
  }
  std::size_t processed = 0;
  while (!frontier.empty()) {
    const PinId p = frontier.front();
    frontier.pop_front();
    ++processed;
    for_each_successor(d, p, [&](PinId to) {
      if (--indeg[static_cast<std::size_t>(to)] == 0) frontier.push_back(to);
    });
  }
  if (processed == num_pins) return;

  // Extract one representative cycle per strongly-connected remainder:
  // follow successors within the remaining set until a pin repeats.
  std::vector<char> remaining(num_pins, 0);
  for (std::size_t pi = 0; pi < num_pins; ++pi) {
    remaining[pi] = indeg[pi] > 0 ? 1 : 0;
  }
  std::vector<char> reported(num_pins, 0);
  for (std::size_t pi = 0; pi < num_pins; ++pi) {
    if (!remaining[pi] || reported[pi]) continue;
    // Walk within the remaining set until revisiting a pin of this walk.
    std::vector<PinId> path;
    std::vector<std::int32_t> pos_in_path(num_pins, -1);
    PinId cur = static_cast<PinId>(pi);
    while (pos_in_path[static_cast<std::size_t>(cur)] < 0) {
      pos_in_path[static_cast<std::size_t>(cur)] =
          static_cast<std::int32_t>(path.size());
      path.push_back(cur);
      PinId next = kNullPin;
      for_each_successor(d, cur, [&](PinId to) {
        if (next == kNullPin && remaining[static_cast<std::size_t>(to)] &&
            !reported[static_cast<std::size_t>(to)]) {
          next = to;
        }
      });
      if (next == kNullPin) break;  // walk dead-ends into a reported cycle
      cur = next;
    }
    const std::int32_t start = pos_in_path[static_cast<std::size_t>(cur)];
    if (start < 0 || path.empty() || path.back() == cur) {
      // Dead-ended without closing a new cycle; mark the walk as seen so the
      // scan terminates.
      for (const PinId p : path) reported[static_cast<std::size_t>(p)] = 1;
      continue;
    }
    std::string msg = "combinational cycle: ";
    constexpr std::size_t kMaxNamed = 8;
    for (std::size_t i = static_cast<std::size_t>(start);
         i < path.size(); ++i) {
      reported[static_cast<std::size_t>(path[i])] = 1;
      if (i - static_cast<std::size_t>(start) < kMaxNamed) {
        msg += d.pin_name(path[i]) + " -> ";
      }
    }
    if (path.size() - static_cast<std::size_t>(start) > kMaxNamed) {
      msg += "... -> ";
    }
    msg += d.pin_name(path[static_cast<std::size_t>(start)]);
    e.emit(Severity::kError, ObjectKind::kPin,
           static_cast<std::int32_t>(path[static_cast<std::size_t>(start)]),
           d.pin_name(path[static_cast<std::size_t>(start)]), std::move(msg));
    // Mark the rest of this walk handled too.
    for (const PinId p : path) reported[static_cast<std::size_t>(p)] = 1;
  }
}

// ---- UnconstrainedEndpointRule ----------------------------------------------

void UnconstrainedEndpointRule::run(const LintContext& ctx,
                                    LintReport& out) const {
  RuleEmitter e(id(), ctx.max_reports_per_rule, out);
  const netlist::Design& d = *ctx.design;
  std::vector<char> reached(d.num_pins(), 0);
  std::deque<PinId> frontier;
  auto seed = [&](PinId p) {
    if (p == kNullPin || reached[static_cast<std::size_t>(p)]) return;
    reached[static_cast<std::size_t>(p)] = 1;
    frontier.push_back(p);
  };
  for (const CellId port : d.input_ports()) seed(d.output_pin(port));
  for (const CellId ff : d.flip_flops()) seed(d.output_pin(ff));
  while (!frontier.empty()) {
    const PinId p = frontier.front();
    frontier.pop_front();
    for_each_successor(d, p, [&](PinId to) { seed(to); });
  }
  auto check_endpoint = [&](PinId ep) {
    if (reached[static_cast<std::size_t>(ep)]) return;
    e.emit(Severity::kWarning, ObjectKind::kPin, ep, d.pin_name(ep),
           "no startpoint reaches this endpoint; its slack is unconstrained "
           "(+inf) and it escapes all timing optimization");
  };
  for (const CellId ff : d.flip_flops()) check_endpoint(d.input_pin(ff, 0));
  for (const CellId port : d.output_ports()) {
    check_endpoint(d.input_pin(port, 0));
  }
}

// ---- ClockDomainRule --------------------------------------------------------

void ClockDomainRule::run(const LintContext& ctx, LintReport& out) const {
  if (ctx.constraints == nullptr) return;
  const netlist::Design& d = *ctx.design;
  RuleEmitter e(id(), ctx.max_reports_per_rule, out);
  RuleEmitter topo("clock-tree-topology", ctx.max_reports_per_rule, out);

  const std::vector<CellId> roots = ctx.constraints->clock_roots();
  if (roots.empty()) {
    if (!d.flip_flops().empty()) {
      e.emit(Severity::kError, ObjectKind::kNone, -1, "",
             "design has " + std::to_string(d.flip_flops().size()) +
                 " flip-flops but the constraints declare no clock root");
    }
    return;
  }

  // Tolerant re-implementation of TimingGraph::mark_clock_network: instead
  // of throwing on a non-buffer in the tree, report it and stop descending.
  std::vector<char> clock_pin(d.num_pins(), 0);
  std::deque<PinId> frontier;
  for (const CellId root : roots) {
    if (root < 0 || static_cast<std::size_t>(root) >= d.num_cells() ||
        d.libcell_of(root).func != CellFunc::kPortIn) {
      topo.emit(Severity::kError, ObjectKind::kCell, root,
                root >= 0 && static_cast<std::size_t>(root) < d.num_cells()
                    ? d.cell(root).name
                    : std::string("<bad id>"),
                "constraint clock root is not a primary input port");
      continue;
    }
    const PinId root_pin = d.output_pin(root);
    clock_pin[static_cast<std::size_t>(root_pin)] = 1;
    frontier.push_back(root_pin);
  }
  while (!frontier.empty()) {
    const PinId drv = frontier.front();
    frontier.pop_front();
    const NetId net = d.pin(drv).net;
    if (net == kNullNet) continue;
    for (const PinId sink : d.net(net).sinks) {
      if (clock_pin[static_cast<std::size_t>(sink)]) continue;
      clock_pin[static_cast<std::size_t>(sink)] = 1;
      const Pin& sp = d.pin(sink);
      if (sp.role == PinRole::kClock) continue;  // FF clock pin: a leaf
      const CellFunc func = d.libcell_of(sp.cell).func;
      if (func != CellFunc::kBuf && func != CellFunc::kInv) {
        topo.emit(Severity::kError, ObjectKind::kPin, sink, d.pin_name(sink),
                  "clock tree reaches a non-buffer/inverter cell (" +
                      std::string(netlist::func_name(func)) +
                      "); the graph builder rejects this topology");
        continue;
      }
      const PinId out_pin = d.output_pin(sp.cell);
      if (out_pin == kNullPin ||
          clock_pin[static_cast<std::size_t>(out_pin)]) {
        continue;
      }
      clock_pin[static_cast<std::size_t>(out_pin)] = 1;
      frontier.push_back(out_pin);
    }
  }

  for (const CellId ff : d.flip_flops()) {
    const PinId ck = d.clock_pin(ff);
    if (ck != kNullPin && clock_pin[static_cast<std::size_t>(ck)]) continue;
    e.emit(Severity::kError, ObjectKind::kPin, ck, d.pin_name(ck),
           "flip-flop clock pin is not reached by any constraint clock "
           "tree; its endpoint has no capturing clock");
  }
}

// ---- LevelConsistencyRule ---------------------------------------------------

std::vector<std::size_t> find_level_inversions(
    std::span<const std::pair<int, int>> edges) {
  std::vector<std::size_t> bad;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto [from, to] = edges[i];
    if (from < 0 || to < 0 || to <= from) bad.push_back(i);
  }
  return bad;
}

void LevelConsistencyRule::run(const LintContext& ctx,
                               LintReport& out) const {
  if (ctx.graph == nullptr) return;
  const timing::TimingGraph& g = *ctx.graph;
  const netlist::Design& d = *ctx.design;
  RuleEmitter e(id(), ctx.max_reports_per_rule, out);

  // Every data arc must climb strictly level-to-higher-level: this is the
  // independence invariant Algorithm 1's level-parallel kernel relies on.
  for (std::size_t pi = 0; pi < d.num_pins(); ++pi) {
    for (const timing::ArcId aid : g.fanin(static_cast<PinId>(pi))) {
      const timing::ArcRecord& a = g.arc(aid);
      const int lf = g.level_of(a.from);
      const int lt = g.level_of(a.to);
      if (lf >= 0 && lt > lf) continue;
      e.emit(Severity::kError, ObjectKind::kArc, aid,
             d.pin_name(a.from) + " -> " + d.pin_name(a.to),
             "data arc does not climb levels (" + std::to_string(lf) +
                 " -> " + std::to_string(lt) +
                 "); level-parallel propagation would race");
    }
  }
  // The level buckets must agree with the per-pin level map.
  for (std::size_t l = 0; l < g.num_levels(); ++l) {
    for (const PinId p : g.level(l)) {
      if (g.level_of(p) == static_cast<int>(l)) continue;
      e.emit(Severity::kError, ObjectKind::kPin, p, d.pin_name(p),
             "pin listed in level " + std::to_string(l) +
                 " but level_of says " + std::to_string(g.level_of(p)));
    }
  }
}

// ---- DelayValuesRule --------------------------------------------------------

void DelayValuesRule::run(const LintContext& ctx, LintReport& out) const {
  if (ctx.delays == nullptr) return;
  const timing::ArcDelays& delays = *ctx.delays;
  RuleEmitter e(id(), ctx.max_reports_per_rule, out);

  auto arc_where = [&](std::size_t arc) {
    if (ctx.graph != nullptr && arc < ctx.graph->num_arcs()) {
      const timing::ArcRecord& a =
          ctx.graph->arc(static_cast<timing::ArcId>(arc));
      return ctx.design->pin_name(a.from) + " -> " +
             ctx.design->pin_name(a.to);
    }
    return "arc " + std::to_string(arc);
  };

  for (std::size_t arc = 0; arc < delays.size(); ++arc) {
    for (const int rf : {0, 1}) {
      const double mu = delays.mu[static_cast<std::size_t>(rf)][arc];
      const double sigma = delays.sigma[static_cast<std::size_t>(rf)][arc];
      if (!std::isfinite(mu)) {
        e.emit(Severity::kError, ObjectKind::kArc,
               static_cast<std::int32_t>(arc), arc_where(arc),
               "arc delay mean is NaN/Inf");
      } else if (mu < 0.0) {
        e.emit(Severity::kWarning, ObjectKind::kArc,
               static_cast<std::int32_t>(arc), arc_where(arc),
               "negative arc delay mean " + std::to_string(mu));
      }
      if (!std::isfinite(sigma) || sigma < 0.0) {
        e.emit(Severity::kError, ObjectKind::kArc,
               static_cast<std::int32_t>(arc), arc_where(arc),
               "arc POCV sigma is NaN/Inf or negative");
      }
    }
  }
}

// ---- corner-setup checks ----------------------------------------------------

LintReport check_corner_setup(std::span<const CornerSetup> corners,
                              std::size_t expected_corners,
                              std::size_t max_reports_per_rule) {
  LintReport out;
  {
    RuleEmitter e("corner-scale", max_reports_per_rule, out);
    for (std::size_t c = 0; c < corners.size(); ++c) {
      const CornerSetup& spec = corners[c];
      const std::string where =
          spec.name.empty() ? "corner " + std::to_string(c) : spec.name;
      if (!std::isfinite(spec.delay_scale) || spec.delay_scale <= 0.0) {
        e.emit(Severity::kError, ObjectKind::kNone,
               static_cast<std::int32_t>(c), where,
               "delay scale " + std::to_string(spec.delay_scale) +
                   " is not a finite positive number");
      }
      if (!std::isfinite(spec.sigma_scale) || spec.sigma_scale <= 0.0) {
        e.emit(Severity::kError, ObjectKind::kNone,
               static_cast<std::int32_t>(c), where,
               "sigma scale " + std::to_string(spec.sigma_scale) +
                   " is not a finite positive number");
      }
    }
  }
  {
    RuleEmitter e("corner-name", max_reports_per_rule, out);
    for (std::size_t c = 0; c < corners.size(); ++c) {
      if (corners[c].name.empty()) {
        e.emit(Severity::kError, ObjectKind::kNone,
               static_cast<std::int32_t>(c), "corner " + std::to_string(c),
               "corner name is empty");
        continue;
      }
      // Quadratic duplicate scan: corner lists are user-typed and tiny.
      for (std::size_t prev = 0; prev < c; ++prev) {
        if (corners[prev].name != corners[c].name) continue;
        e.emit(Severity::kError, ObjectKind::kNone,
               static_cast<std::int32_t>(c), corners[c].name,
               "duplicate corner name (first defined as corner " +
                   std::to_string(prev) + ")");
        break;
      }
    }
  }
  if (expected_corners != 0 && corners.size() != expected_corners) {
    RuleEmitter e("corner-count", max_reports_per_rule, out);
    e.emit(Severity::kError, ObjectKind::kNone, -1, "corner set",
           "corner count mismatch: this set defines " +
               std::to_string(corners.size()) + " corners, expected " +
               std::to_string(expected_corners));
  }
  return out;
}

LintReport check_corner_reference(std::int32_t corner,
                                  std::size_t num_corners) {
  LintReport out;
  if (corner >= -1 && corner < static_cast<std::int32_t>(num_corners)) {
    return out;
  }
  RuleEmitter e("corner-reference", 1, out);
  e.emit(Severity::kError, ObjectKind::kNone, corner,
         "corner " + std::to_string(corner),
         "delta set references unknown corner " + std::to_string(corner) +
             " (engine propagates " + std::to_string(num_corners) +
             " corners; -1 broadcasts)");
  return out;
}

std::vector<std::unique_ptr<Rule>> default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<LibertyValuesRule>());
  rules.push_back(std::make_unique<UndrivenPinRule>());
  rules.push_back(std::make_unique<MultiDriverRule>());
  rules.push_back(std::make_unique<PinNetMismatchRule>());
  rules.push_back(std::make_unique<CombinationalLoopRule>());
  rules.push_back(std::make_unique<UnconstrainedEndpointRule>());
  rules.push_back(std::make_unique<ClockDomainRule>());
  rules.push_back(std::make_unique<LevelConsistencyRule>());
  rules.push_back(std::make_unique<DelayValuesRule>());
  return rules;
}

}  // namespace insta::analysis
