#include "analysis/diagnostics.hpp"

#include <algorithm>

namespace insta::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string out = severity_name(severity);
  out += "[";
  out += rule;
  out += "]";
  if (!where.empty()) {
    out += " ";
    out += where;
  }
  out += ": ";
  out += message;
  return out;
}

void LintReport::add(Diagnostic d) { diags_.push_back(std::move(d)); }

void LintReport::add_suppressed(std::string_view rule, std::size_t n) {
  if (n == 0) return;
  const auto it = std::find_if(
      suppressed_.begin(), suppressed_.end(),
      [&](const Suppressed& s) { return s.rule == rule; });
  if (it != suppressed_.end()) {
    it->count += n;
  } else {
    suppressed_.push_back({std::string(rule), n});
  }
}

std::size_t LintReport::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == s) ++n;
  }
  return n;
}

std::size_t LintReport::count_rule(std::string_view rule) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.rule == rule) ++n;
  }
  for (const Suppressed& s : suppressed_) {
    if (s.rule == rule) n += s.count;
  }
  return n;
}

std::string LintReport::str() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.str();
    out += "\n";
  }
  for (const Suppressed& s : suppressed_) {
    out += "note[" + s.rule + "]: " + std::to_string(s.count) +
           " further finding(s) suppressed\n";
  }
  out += "lint: " + std::to_string(count(Severity::kError)) + " error(s), " +
         std::to_string(count(Severity::kWarning)) + " warning(s), " +
         std::to_string(count(Severity::kInfo)) + " info\n";
  return out;
}

void LintReport::merge(const LintReport& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
  for (const Suppressed& s : other.suppressed_) {
    add_suppressed(s.rule, s.count);
  }
}

}  // namespace insta::analysis
