#pragma once

#include <span>
#include <string>

#include "analysis/diagnostics.hpp"
#include "core/engine.hpp"

namespace insta::analysis {

/// Audits one pin/transition's Top-K arrival list against the invariants
/// Algorithm 2 maintains: at most `k` entries, corner arrivals sorted
/// descending, startpoint tags unique and non-negative, all values finite,
/// sigmas non-negative. Emits "topk-invariant" diagnostics into `out`.
/// Exposed separately from audit_engine so tests can feed crafted lists.
void audit_topk_entries(std::span<const core::Engine::TopKEntry> entries,
                        int k, const std::string& where, LintReport& out);

/// Post-propagation audit hook: sweeps every pin/transition Top-K store of
/// an Engine on which run_forward() has completed, plus the endpoint slack
/// array (NaN slacks). Cheap relative to propagation; run it after forward
/// passes in debug flows to catch merge-kernel corruption at the source.
[[nodiscard]] LintReport audit_engine(const core::Engine& engine);

}  // namespace insta::analysis
