#pragma once

#include <span>
#include <string>

#include "analysis/diagnostics.hpp"
#include "core/engine.hpp"
#include "telemetry/metrics.hpp"

namespace insta::analysis {

/// Audits one pin/transition's Top-K arrival list against the invariants
/// Algorithm 2 maintains: at most `k` entries, corner arrivals sorted
/// descending, startpoint tags unique and non-negative, all values finite,
/// sigmas non-negative. Emits "topk-invariant" diagnostics into `out`.
/// Exposed separately from audit_engine so tests can feed crafted lists.
void audit_topk_entries(std::span<const core::Engine::TopKEntry> entries,
                        int k, const std::string& where, LintReport& out);

/// Post-propagation audit hook: sweeps every pin/transition Top-K store of
/// an Engine on which run_forward() has completed, plus the endpoint slack
/// array (NaN slacks). Cheap relative to propagation; run it after forward
/// passes in debug flows to catch merge-kernel corruption at the source.
[[nodiscard]] LintReport audit_engine(const core::Engine& engine);

/// Audits a telemetry snapshot for runtime anomalies: a forward pass that
/// processed no pins, merge kernels whose Top-K filter never pruned,
/// endpoint evaluation without a single CPPR lookup, and thread-pool
/// workers idle more than half the time. Emits "telemetry-anomaly"
/// diagnostics at Severity::kInfo — these flag performance or
/// configuration oddities, not correctness violations, and must not trip
/// strict lint gates. No-op on an empty snapshot (telemetry compiled out).
[[nodiscard]] LintReport audit_metrics(
    const telemetry::MetricsSnapshot& snapshot);

}  // namespace insta::analysis
