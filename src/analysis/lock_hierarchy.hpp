#pragma once

// Debug-build lock-hierarchy validator (the runtime complement of the
// Clang thread-safety annotations in util/thread_annotations.hpp).
//
// Clang's analysis is flow-insensitive and per-function: it proves guarded
// state is touched only under its lock, but it cannot see a cross-thread
// acquisition *order* bug (thread A takes X then Y, thread B takes Y then
// X). This validator catches those at test time: every util::Mutex /
// util::SharedMutex carries a declared rank (util/lock_rank.hpp), each
// thread tracks the stack of locks it holds, and an acquisition whose rank
// is not strictly below every held rank aborts the process printing both
// the acquiring stack and the stack captured when the conflicting lock was
// taken. Re-entrant acquisition and shared->exclusive upgrades on the same
// lock (self-deadlocks no ordering rule can express) abort the same way.
//
// Compiled in only when INSTA_LOCK_CHECK_ENABLED is 1 (CMake option
// INSTA_LOCK_CHECK, default ON for Debug builds, OFF for Release); with it
// off every hook below is an empty inline and util::Mutex collapses to a
// bare std::mutex call.
//
// Layering: this header is included by util/mutex.hpp, the bottom of the
// dependency stack, so it must stay dependency-free (the .cpp builds into
// the standalone insta_lockcheck target, not insta_analysis).

#include <cstddef>

#ifndef INSTA_LOCK_CHECK_ENABLED
#define INSTA_LOCK_CHECK_ENABLED 0
#endif

namespace insta::analysis {

/// Static metadata of one lock instance (name and rank live as long as the
/// lock; the validator stores pointers to it in per-thread stacks).
struct LockRankInfo {
  const char* name;
  int rank;
};

/// Hook invoked (when set) right before the validator aborts, so higher
/// layers can dump diagnostic state — the telemetry flight recorder
/// registers itself here. A bare function pointer keeps this header
/// dependency-free (it sits below util/mutex.hpp in the include stack).
/// The hook runs on the aborting thread and must not acquire locks.
using LockCheckAbortHook = void (*)();

#if INSTA_LOCK_CHECK_ENABLED

/// Installs `hook` (nullptr clears it). Last writer wins; expected to be
/// set once at process init.
void lock_check_set_abort_hook(LockCheckAbortHook hook);

/// Registers an impending acquisition on the calling thread's held-lock
/// stack. Called by the util::Mutex wrappers immediately BEFORE blocking on
/// the underlying primitive, so ordering violations abort with clean stacks
/// instead of deadlocking. Aborts on: rank >= any held rank, re-entrant
/// acquisition, or a shared->exclusive upgrade of `lock`.
void lock_check_acquire(const LockRankInfo* info, const void* lock,
                        bool shared);

/// Pops `lock` from the calling thread's held-lock stack. Aborts if the
/// thread does not hold it (a release on the wrong thread).
void lock_check_release(const void* lock);

/// Number of locks the calling thread currently holds (test hook).
[[nodiscard]] std::size_t lock_check_held_count();

#else  // !INSTA_LOCK_CHECK_ENABLED

inline void lock_check_set_abort_hook(LockCheckAbortHook /*hook*/) {}
inline void lock_check_acquire(const LockRankInfo* /*info*/,
                               const void* /*lock*/, bool /*shared*/) {}
inline void lock_check_release(const void* /*lock*/) {}
[[nodiscard]] inline std::size_t lock_check_held_count() { return 0; }

#endif  // INSTA_LOCK_CHECK_ENABLED

}  // namespace insta::analysis
