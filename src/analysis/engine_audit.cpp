#include "analysis/engine_audit.hpp"

#include <cmath>
#include <cstdio>
#include <unordered_set>

namespace insta::analysis {

namespace {

void emit(LintReport& out, const std::string& where, std::string message) {
  Diagnostic d;
  d.rule = "topk-invariant";
  d.severity = Severity::kError;
  d.kind = ObjectKind::kPin;
  d.where = where;
  d.message = std::move(message);
  out.add(std::move(d));
}

}  // namespace

void audit_topk_entries(std::span<const core::Engine::TopKEntry> entries,
                        int k, const std::string& where, LintReport& out) {
  if (entries.size() > static_cast<std::size_t>(k)) {
    emit(out, where,
         "Top-K list holds " + std::to_string(entries.size()) +
             " entries, capacity " + std::to_string(k));
  }
  std::unordered_set<std::int32_t> seen;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const core::Engine::TopKEntry& e = entries[i];
    if (!std::isfinite(e.arr) || !std::isfinite(e.mu) ||
        !std::isfinite(e.sig)) {
      emit(out, where,
           "entry " + std::to_string(i) + " has NaN/Inf arrival values");
    }
    if (e.sig < 0.0f) {
      emit(out, where,
           "entry " + std::to_string(i) + " has negative sigma " +
               std::to_string(e.sig));
    }
    if (e.sp < 0) {
      emit(out, where,
           "entry " + std::to_string(i) + " has invalid startpoint tag " +
               std::to_string(e.sp));
    } else if (!seen.insert(e.sp).second) {
      emit(out, where,
           "duplicate startpoint " + std::to_string(e.sp) +
               " in Top-K list (uniqueness invariant of Algorithm 2)");
    }
    if (i > 0 && entries[i - 1].arr < e.arr) {
      emit(out, where,
           "arrivals not sorted descending at entry " + std::to_string(i) +
               " (" + std::to_string(entries[i - 1].arr) + " < " +
               std::to_string(e.arr) + ")");
    }
  }
}

LintReport audit_engine(const core::Engine& engine) {
  LintReport report;
  const netlist::Design& design = engine.graph().design();
  const int k = engine.options().top_k;
  for (std::size_t pi = 0; pi < design.num_pins(); ++pi) {
    const auto pin = static_cast<netlist::PinId>(pi);
    if (engine.graph().level_of(pin) < 0) continue;  // clock network
    for (const netlist::RiseFall rf : netlist::kBothTransitions) {
      const std::vector<core::Engine::TopKEntry> entries =
          engine.arrivals(pin, rf);
      if (entries.empty()) continue;
      audit_topk_entries(entries, k,
                         design.pin_name(pin) +
                             (rf == netlist::RiseFall::kRise ? " (rise)"
                                                             : " (fall)"),
                         report);
    }
  }
  const std::span<const float> slacks = engine.endpoint_slacks();
  for (std::size_t e = 0; e < slacks.size(); ++e) {
    if (!std::isnan(slacks[e])) continue;
    Diagnostic d;
    d.rule = "topk-invariant";
    d.severity = Severity::kError;
    d.kind = ObjectKind::kEndpoint;
    d.object = static_cast<std::int32_t>(e);
    d.where = design.pin_name(
        engine.graph().endpoints()[e].pin);
    d.message = "endpoint slack is NaN after propagation";
    report.add(std::move(d));
  }
  return report;
}

namespace {

void emit_anomaly(LintReport& out, std::string message) {
  Diagnostic d;
  d.rule = "telemetry-anomaly";
  d.severity = Severity::kInfo;
  d.kind = ObjectKind::kNone;
  d.message = std::move(message);
  out.add(std::move(d));
}

}  // namespace

LintReport audit_metrics(const telemetry::MetricsSnapshot& snapshot) {
  LintReport report;
  if (snapshot.empty()) return report;

  const std::uint64_t forward = snapshot.counter_or("engine.forward_passes", 0);
  const std::uint64_t pins = snapshot.counter_or("engine.pins_processed", 0);
  const std::uint64_t merges = snapshot.counter_or("engine.merge_ops", 0);
  const std::uint64_t prunes = snapshot.counter_or("engine.prune_hits", 0);
  const std::uint64_t endpoints =
      snapshot.counter_or("engine.endpoints_evaluated", 0);
  const std::uint64_t lookups = snapshot.counter_or("engine.cppr_lookups", 0);

  if (forward > 0 && pins == 0) {
    emit_anomaly(report,
                 "forward pass ran but processed zero pins (empty level "
                 "order or graph not built)");
  }
  // A healthy Top-K filter prunes once lists saturate; no prunes over a
  // large merge volume means every candidate was kept (top_k at or above
  // the startpoint count, so the filter does no work).
  if (merges >= 10000 && prunes == 0) {
    emit_anomaly(report,
                 "no Top-K prune hits across " + std::to_string(merges) +
                     " merge ops (top_k likely exceeds the per-pin "
                     "startpoint diversity)");
  }
  if (endpoints > 0 && lookups == 0) {
    emit_anomaly(report,
                 "endpoints evaluated without any CPPR credit lookups "
                 "(no valid Top-K entries reached the endpoints)");
  }

  const double busy = snapshot.gauge_or("pool.busy_sec", 0.0);
  const double idle = snapshot.gauge_or("pool.idle_sec", 0.0);
  const double workers = snapshot.gauge_or("pool.workers", 0.0);
  // Ignore short runs: idle dominates trivially when the pool barely ran.
  if (workers > 1.0 && busy + idle > 1.0 && idle > busy) {
    const double idle_pct = 100.0 * idle / (busy + idle);
    if (idle_pct > 50.0) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "thread pool idle %.1f%% of its time (%g workers; "
                    "levels may be too small to parallelize)",
                    idle_pct, workers);
      emit_anomaly(report, buf);
    }
  }
  return report;
}

}  // namespace insta::analysis
