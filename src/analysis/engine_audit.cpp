#include "analysis/engine_audit.hpp"

#include <cmath>
#include <unordered_set>

namespace insta::analysis {

namespace {

void emit(LintReport& out, const std::string& where, std::string message) {
  Diagnostic d;
  d.rule = "topk-invariant";
  d.severity = Severity::kError;
  d.kind = ObjectKind::kPin;
  d.where = where;
  d.message = std::move(message);
  out.add(std::move(d));
}

}  // namespace

void audit_topk_entries(std::span<const core::Engine::TopKEntry> entries,
                        int k, const std::string& where, LintReport& out) {
  if (entries.size() > static_cast<std::size_t>(k)) {
    emit(out, where,
         "Top-K list holds " + std::to_string(entries.size()) +
             " entries, capacity " + std::to_string(k));
  }
  std::unordered_set<std::int32_t> seen;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const core::Engine::TopKEntry& e = entries[i];
    if (!std::isfinite(e.arr) || !std::isfinite(e.mu) ||
        !std::isfinite(e.sig)) {
      emit(out, where,
           "entry " + std::to_string(i) + " has NaN/Inf arrival values");
    }
    if (e.sig < 0.0f) {
      emit(out, where,
           "entry " + std::to_string(i) + " has negative sigma " +
               std::to_string(e.sig));
    }
    if (e.sp < 0) {
      emit(out, where,
           "entry " + std::to_string(i) + " has invalid startpoint tag " +
               std::to_string(e.sp));
    } else if (!seen.insert(e.sp).second) {
      emit(out, where,
           "duplicate startpoint " + std::to_string(e.sp) +
               " in Top-K list (uniqueness invariant of Algorithm 2)");
    }
    if (i > 0 && entries[i - 1].arr < e.arr) {
      emit(out, where,
           "arrivals not sorted descending at entry " + std::to_string(i) +
               " (" + std::to_string(entries[i - 1].arr) + " < " +
               std::to_string(e.arr) + ")");
    }
  }
}

LintReport audit_engine(const core::Engine& engine) {
  LintReport report;
  const netlist::Design& design = engine.graph().design();
  const int k = engine.options().top_k;
  for (std::size_t pi = 0; pi < design.num_pins(); ++pi) {
    const auto pin = static_cast<netlist::PinId>(pi);
    if (engine.graph().level_of(pin) < 0) continue;  // clock network
    for (const netlist::RiseFall rf : netlist::kBothTransitions) {
      const std::vector<core::Engine::TopKEntry> entries =
          engine.arrivals(pin, rf);
      if (entries.empty()) continue;
      audit_topk_entries(entries, k,
                         design.pin_name(pin) +
                             (rf == netlist::RiseFall::kRise ? " (rise)"
                                                             : " (fall)"),
                         report);
    }
  }
  const std::span<const float> slacks = engine.endpoint_slacks();
  for (std::size_t e = 0; e < slacks.size(); ++e) {
    if (!std::isnan(slacks[e])) continue;
    Diagnostic d;
    d.rule = "topk-invariant";
    d.severity = Severity::kError;
    d.kind = ObjectKind::kEndpoint;
    d.object = static_cast<std::int32_t>(e);
    d.where = design.pin_name(
        engine.graph().endpoints()[e].pin);
    d.message = "endpoint slack is NaN after propagation";
    report.add(std::move(d));
  }
  return report;
}

}  // namespace insta::analysis
