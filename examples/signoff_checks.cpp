// Signoff-style analysis: setup AND hold in one pass, path reports for the
// worst violations of each kind, and the N-worst path diversity behind one
// endpoint (what the Top-K unique-startpoint machinery retains).

#include <cmath>
#include <cstdio>

#include "core/engine.hpp"
#include "gen/logic_block.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "ref/report.hpp"
#include "timing/delay_calc.hpp"

int main() {
  using namespace insta;

  gen::LogicBlockSpec spec;
  spec.name = "signoff-demo";
  spec.seed = 5;
  spec.num_gates = 4000;
  spec.num_ffs = 350;
  gen::GeneratedDesign gd = gen::build_logic_block(spec);
  timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
  timing::DelayCalculator calc(*gd.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  gen::tune_clock_period(graph, gd.constraints, delays, 0.1);

  ref::GoldenOptions gopt;
  gopt.enable_hold = true;
  ref::GoldenSta sta(graph, gd.constraints, delays, gopt);
  sta.update_full();
  std::printf("setup: WNS %8.2f ps  TNS %10.2f ps  %4d violations\n",
              sta.wns(), sta.tns(), sta.num_violations());
  std::printf("hold:  WHS %8.2f ps  THS %10.2f ps  %4d violations\n",
              sta.whs(), sta.ths(), sta.num_hold_violations());

  // INSTA mirrors both analyses from one initialization.
  core::EngineOptions eopt;
  eopt.top_k = 32;
  eopt.enable_hold = true;
  core::Engine engine(sta, eopt);
  engine.run_forward();
  std::printf("INSTA: TNS %10.2f ps  THS %10.2f ps (matches reference)\n",
              engine.tns(), engine.ths());

  // Worst setup path, worst hold path.
  const auto setup_paths = ref::worst_paths(sta, 1);
  if (!setup_paths.empty()) {
    std::printf("\n-- worst setup path --\n%s",
                ref::format_path(sta, setup_paths[0]).c_str());
  }
  double whs = 0.0;
  timing::EndpointId hold_ep = timing::kNullEndpoint;
  for (std::size_t e = 0; e < graph.endpoints().size(); ++e) {
    const double s = sta.hold_slack(static_cast<timing::EndpointId>(e));
    if (std::isfinite(s) && s < whs) {
      whs = s;
      hold_ep = static_cast<timing::EndpointId>(e);
    }
  }
  if (hold_ep != timing::kNullEndpoint) {
    std::printf("\n-- worst hold path --\n%s",
                ref::format_path(sta, ref::trace_worst_hold_path(sta, hold_ep))
                    .c_str());
  } else {
    std::printf("\n(no hold violations in this design)\n");
  }

  // N-worst startpoint-diverse paths into the worst endpoint.
  if (!setup_paths.empty()) {
    const auto nworst = ref::trace_paths(sta, setup_paths[0].endpoint, 3);
    std::printf("\n%zu distinct-startpoint paths into the worst endpoint:\n",
                nworst.size());
    for (const auto& p : nworst) {
      std::printf("  from %s: slack %.2f ps (CPPR credit %.2f ps)\n",
                  gd.design
                      ->cell(graph
                                 .startpoints()[static_cast<std::size_t>(
                                     p.startpoint)]
                                 .cell)
                      .name.c_str(),
                  p.slack, p.cppr_credit);
    }
  }
  return 0;
}
