// Quickstart: generate a small clocked design, run the golden reference
// engine (the PrimeTime stand-in), initialize INSTA from it, and compare
// endpoint slacks.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cmath>
#include <cstdio>

#include "core/engine.hpp"
#include "gen/logic_block.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "ref/report.hpp"
#include "timing/delay_calc.hpp"
#include "util/stats.hpp"

int main() {
  using namespace insta;

  // 1. A synthetic clocked netlist: 5000 gates, 400 flip-flops, a buffered
  //    clock tree, rise/fall + unateness everywhere, a few exceptions.
  gen::LogicBlockSpec spec;
  spec.name = "quickstart";
  spec.seed = 1;
  spec.num_gates = 5000;
  spec.num_ffs = 400;
  gen::GeneratedDesign gd = gen::build_logic_block(spec);
  std::printf("design: %zu cells, %zu nets, %zu pins\n",
              gd.design->num_cells(), gd.design->num_nets(),
              gd.design->num_pins());

  // 2. Timing graph + delay calculation (the reference tool's side).
  timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
  timing::DelayCalculator calc(*gd.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  gen::tune_clock_period(graph, gd.constraints, delays, /*violate=*/0.1);
  std::printf("clock period tuned to %.1f ps (~10%% endpoints violating)\n",
              gd.constraints.clock_period);

  // 3. Golden reference STA: exact per-startpoint statistical propagation
  //    with CPPR.
  ref::GoldenSta sta(graph, gd.constraints, delays);
  sta.update_full();
  std::printf("reference:  WNS %8.2f ps   TNS %10.2f ps   %d violations\n",
              sta.wns(), sta.tns(), sta.num_violations());

  // 4. INSTA: one-time initialization (cloning), then ultra-fast Top-K
  //    statistical propagation.
  core::EngineOptions opt;
  opt.top_k = 32;
  core::Engine insta(sta, opt);
  insta.run_forward();
  std::printf("INSTA:      WNS %8.2f ps   TNS %10.2f ps   %d violations\n",
              insta.wns(), insta.tns(), insta.num_violations());

  // 5. Endpoint-slack correlation (the paper's headline metric).
  std::vector<double> ref_slack, insta_slack;
  for (std::size_t e = 0; e < graph.endpoints().size(); ++e) {
    const double g = sta.endpoint_slack(static_cast<timing::EndpointId>(e));
    const float m = insta.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (std::isfinite(g) && std::isfinite(m)) {
      ref_slack.push_back(g);
      insta_slack.push_back(static_cast<double>(m));
    }
  }
  std::printf("endpoint slack correlation: %s over %zu endpoints\n",
              util::format_correlation(util::pearson(ref_slack, insta_slack))
                  .c_str(),
              ref_slack.size());

  // 6. Timing gradients: one backward pass ranks every arc's contribution
  //    to TNS.
  insta.run_backward(core::GradientMetric::kTns);
  float worst_grad = 0.0f;
  timing::ArcId worst_arc = 0;
  for (std::size_t a = 0; a < graph.num_arcs(); ++a) {
    if (insta.arc_gradient(static_cast<timing::ArcId>(a)) > worst_grad) {
      worst_grad = insta.arc_gradient(static_cast<timing::ArcId>(a));
      worst_arc = static_cast<timing::ArcId>(a);
    }
  }
  const timing::ArcRecord& rec = graph.arc(worst_arc);
  std::printf("most critical arc: %s -> %s (dTNS/d-delay = %.3f)\n",
              gd.design->pin_name(rec.from).c_str(),
              gd.design->pin_name(rec.to).c_str(), worst_grad);

  // 7. A report_timing-style trace of the worst path.
  const auto paths = ref::worst_paths(sta, 1);
  std::printf("\n%s", ref::format_path(sta, paths[0]).c_str());
  return 0;
}
