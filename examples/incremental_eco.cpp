// Incremental ECO evaluation: the Application-1 flow of the paper. After a
// gate resize, PrimeTime's estimate_eco stand-in produces local arc-delay
// deltas; INSTA re-annotates them and refreshes full-graph timing in one
// forward pass — no cone tracing, no incremental bookkeeping.

#include <cmath>
#include <cstdio>

#include "core/engine.hpp"
#include "gen/changelist.hpp"
#include "gen/logic_block.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"
#include "util/timer.hpp"

int main() {
  using namespace insta;

  gen::LogicBlockSpec spec;
  spec.name = "eco-demo";
  spec.seed = 3;
  spec.num_gates = 12000;
  spec.num_ffs = 1000;
  gen::GeneratedDesign gd = gen::build_logic_block(spec);
  timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
  timing::DelayCalculator calc(*gd.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  gen::tune_clock_period(graph, gd.constraints, delays, 0.1);
  ref::GoldenSta sta(graph, gd.constraints, delays);
  sta.update_full();

  core::Engine insta(sta, {});
  insta.run_forward();
  std::printf("initial TNS: reference %.1f ps, INSTA %.1f ps\n", sta.tns(),
              insta.tns());

  // Replay a changelist of 50 random resizes against both engines.
  util::Rng rng(7);
  const auto changes = gen::random_changelist(*gd.design, graph, rng, 50);
  double insta_ms = 0.0, golden_ms = 0.0;
  for (const auto& ch : changes) {
    // INSTA path: estimate_eco deltas + annotate + full forward.
    util::Stopwatch sw;
    const auto deltas = calc.estimate_eco(ch.cell, ch.new_libcell);
    insta.annotate(deltas);
    insta.run_forward();
    insta_ms += sw.elapsed_ms();

    // Reference path: exact delay update + incremental cone propagation.
    sw.reset();
    gd.design->resize_cell(ch.cell, ch.new_libcell);
    const auto changed = calc.update_for_resize(ch.cell, sta.mutable_delays());
    sta.update_incremental(changed);
    golden_ms += sw.elapsed_ms();
  }
  std::printf("after 50 resizes: reference TNS %.1f ps, INSTA TNS %.1f ps "
              "(estimate_eco drift: %.1f ps)\n",
              sta.tns(), insta.tns(), std::abs(sta.tns() - insta.tns()));
  std::printf("per-resize evaluation: INSTA %.2f ms, reference incremental "
              "%.2f ms\n",
              insta_ms / 50.0, golden_ms / 50.0);

  // Any accuracy concern is fixed by re-synchronizing INSTA from the
  // reference (the paper's 10-minute full re-extraction).
  core::Engine resynced(sta, {});
  resynced.run_forward();
  std::printf("after re-sync: INSTA TNS %.1f ps (matches reference again)\n",
              resynced.tns());
  return 0;
}
