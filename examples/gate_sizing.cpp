// INSTA-Size demo (Application-2): gradient-based gate sizing. One
// backward pass pinpoints the stages that matter for TNS; estimate_eco
// proposes the best library cell per stage; commits are validated on
// INSTA's fast evaluation and rolled back if TNS degrades.

#include <cstdio>

#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "size/insta_size.hpp"
#include "timing/delay_calc.hpp"

int main() {
  using namespace insta;

  gen::LogicBlockSpec spec = gen::table2_iwls_specs()[2];  // des-like
  gen::GeneratedDesign gd = gen::build_logic_block(spec);
  timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
  timing::DelayCalculator calc(*gd.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  gen::tune_clock_period(graph, gd.constraints, delays, 0.12);
  ref::GoldenSta sta(graph, gd.constraints, delays);
  sta.update_full();

  std::printf("design %s: %zu cells, %zu pins\n", spec.name.c_str(),
              gd.design->num_cells(), gd.design->num_pins());
  std::printf("initial: WNS %.2f ps, TNS %.2f ps, %d violating endpoints\n",
              sta.wns(), sta.tns(), sta.num_violations());

  size::InstaSizeOptions opt;
  size::InstaSizer sizer(*gd.design, graph, calc, sta, opt);
  const size::SizerResult r = sizer.run();

  std::printf("final:   WNS %.2f ps, TNS %.2f ps, %d violating endpoints\n",
              r.final_wns, r.final_tns, r.final_violations);
  std::printf("cells sized: %d of %zu (%.1f%%)\n", r.cells_sized,
              gd.design->num_cells(),
              100.0 * r.cells_sized / static_cast<double>(gd.design->num_cells()));
  std::printf("total runtime %.2f s, of which backward (gradient) passes "
              "%.3f s\n",
              r.runtime_sec, r.backward_sec);
  return 0;
}
