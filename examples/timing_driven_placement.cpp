// INSTA-Place demo (Application-3): differentiable timing-driven global
// placement. The same analytic placer runs three times — timing-oblivious,
// with momentum net weighting, and with INSTA's arc-gradient weighted
// distances (Eq. 7-8) — on one Superblue-like benchmark.

#include <cstdio>

#include "gen/placement_bench.hpp"
#include "gen/tune.hpp"
#include "place/placer.hpp"
#include "timing/delay_calc.hpp"

namespace {

using namespace insta;

place::PlaceResult run(const gen::PlacementBenchSpec& spec, double period,
                       place::TimingMode mode) {
  gen::PlacementBench bench = gen::build_placement_bench(spec);
  bench.gd.constraints.clock_period = period;
  place::PlacerOptions opt;
  opt.mode = mode;
  place::GlobalPlacer placer(bench, opt);
  return placer.run();
}

}  // namespace

int main() {
  gen::PlacementBenchSpec spec;
  spec.logic.name = "place-demo";
  spec.logic.seed = 77;
  spec.logic.num_gates = 6000;
  spec.logic.num_ffs = 600;
  spec.logic.false_path_frac = 0.0;
  spec.logic.multicycle_frac = 0.0;

  // Tune the clock on a timing-oblivious placement so about a quarter of
  // the endpoints violate.
  double period;
  {
    gen::PlacementBench bench = gen::build_placement_bench(spec);
    place::PlacerOptions opt;
    opt.mode = place::TimingMode::kNone;
    place::GlobalPlacer placer(bench, opt);
    (void)placer.run();
    timing::TimingGraph graph(*bench.gd.design,
                              bench.gd.constraints.clock_root);
    timing::DelayModelParams dm;
    dm.use_placement = true;
    timing::DelayCalculator calc(*bench.gd.design, graph, dm);
    timing::ArcDelays delays;
    calc.compute_all(delays);
    period = gen::tune_clock_period(graph, bench.gd.constraints, delays, 0.25);
  }
  std::printf("benchmark %s, clock period %.0f ps\n", spec.logic.name.c_str(),
              period);

  struct Row {
    const char* name;
    place::TimingMode mode;
  };
  const Row rows[] = {
      {"wirelength-only (DP role)", place::TimingMode::kNone},
      {"net weighting (DP-4.0 role)", place::TimingMode::kNetWeight},
      {"INSTA-Place (arc gradients)", place::TimingMode::kInstaPlace},
  };
  for (const Row& row : rows) {
    const auto r = run(spec, period, row.mode);
    std::printf("%-28s HPWL %10.0f um   TNS %12.1f ps   %4d violations "
                "(%.1f s)\n",
                row.name, r.hpwl, r.tns, r.violations, r.total_sec);
  }
  return 0;
}
