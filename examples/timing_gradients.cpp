// Timing gradients (Section III-G): the backward pass assigns every arc a
// differentiable criticality — its contribution to TNS or WNS. This example
// shows how the LSE temperature controls the gradient landscape and ranks
// the most critical stages of a design.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"

int main() {
  using namespace insta;

  gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(9));
  timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
  timing::DelayCalculator calc(*gd.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  gen::tune_clock_period(graph, gd.constraints, delays, 0.15);
  ref::GoldenSta sta(graph, gd.constraints, delays);
  sta.update_full();

  // Gradient landscape vs LSE temperature (Eq. 4): small tau approaches the
  // hard max (gradient flows only along the single most critical path);
  // larger tau spreads gradient across near-critical paths, which is what
  // lets optimization see sub-critical structure.
  for (const float tau : {0.01f, 1.0f, 10.0f, 50.0f}) {
    core::EngineOptions opt;
    opt.tau = tau;
    core::Engine engine(sta, opt);
    engine.run_forward();
    engine.run_backward(core::GradientMetric::kTns);
    int active = 0;
    for (std::size_t a = 0; a < graph.num_arcs(); ++a) {
      if (engine.arc_gradient(static_cast<timing::ArcId>(a)) > 1e-3f) ++active;
    }
    std::printf("tau = %6.2f ps: %4d arcs carry gradient > 1e-3\n", tau,
                active);
  }

  // Rank stages (cell + driving net) by TNS gradient — the INSTA-Size
  // candidate list.
  core::EngineOptions opt;
  opt.tau = 10.0f;
  core::Engine engine(sta, opt);
  engine.run_forward();
  engine.run_backward(core::GradientMetric::kTns);
  std::vector<std::pair<float, netlist::CellId>> stages;
  for (std::size_t c = 0; c < gd.design->num_cells(); ++c) {
    const auto id = static_cast<netlist::CellId>(c);
    const auto& lc = gd.design->libcell_of(id);
    if (!netlist::has_output(lc.func) || netlist::is_sequential(lc.func) ||
        netlist::num_data_inputs(lc.func) == 0) {
      continue;
    }
    const float g = engine.stage_gradient(id);
    if (g > 0.0f) stages.emplace_back(g, id);
  }
  std::sort(stages.begin(), stages.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::printf("\ntop 10 critical stages by dTNS/d-delay:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, stages.size()); ++i) {
    const auto [g, id] = stages[i];
    std::printf("  %-10s (%s)  gradient %.3f\n",
                gd.design->cell(id).name.c_str(),
                gd.design->libcell_of(id).name.c_str(), g);
  }

  // WNS gradients concentrate on the single worst path.
  engine.run_backward(core::GradientMetric::kWns);
  float best = 0.0f;
  netlist::CellId best_cell = 0;
  for (const auto& [g, id] : stages) {
    const float wg = engine.stage_gradient(id);
    if (wg > best) {
      best = wg;
      best_cell = id;
    }
  }
  std::printf("\nWNS bottleneck stage: %s (gradient %.3f)\n",
              gd.design->cell(best_cell).name.c_str(), best);
  return 0;
}
